//! Declarative description of one experiment run.
//!
//! A [`ScenarioSpec`] is plain data: a named workload, a protocol
//! parameterisation, a clustering strategy, a network model and a failure
//! schedule. Specs are `Clone + Send + Sync`, so the executor can fan a
//! batch out across threads, and every constituent resolves
//! deterministically — the same spec always produces the same run.

use clustering::{partition, CommGraph, PartitionConfig};
use det_sim::{SimDuration, SimTime};
use mps_sim::{Application, ClusterMap, DetMode, Rank, SimConfig};
use net_model::{MxModel, NetworkModel, StableStorage, TcpModel};
use protocols::{
    CoordinatedConfig, CoordinatedFactory, DeterminantCost, EventLoggedFactory, FailureEvent,
    HydeeFactory, HydeeParams, NativeFactory, ProtocolFactory,
};
use serde::Serialize;
use workloads::WorkloadSpec;

/// How ranks are grouped into clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ClusterStrategy {
    /// Everyone in one cluster (pure coordinated checkpointing).
    Single,
    /// One cluster per rank (pure message logging).
    PerRank,
    /// `k` contiguous equal blocks.
    Blocks(usize),
    /// The Table-I pipeline: communication-graph partitioning into `k`
    /// balanced clusters.
    Partitioned(usize),
}

impl ClusterStrategy {
    pub fn name(&self) -> String {
        match self {
            ClusterStrategy::Single => "single".into(),
            ClusterStrategy::PerRank => "per-rank".into(),
            ClusterStrategy::Blocks(k) => format!("blocks{k}"),
            ClusterStrategy::Partitioned(k) => format!("part{k}"),
        }
    }

    /// Resolve to a concrete map for `app`. Deterministic.
    pub fn resolve(&self, app: &Application) -> ClusterMap {
        let n = app.n_ranks();
        match self {
            ClusterStrategy::Single => ClusterMap::single(n),
            ClusterStrategy::PerRank => ClusterMap::per_rank(n),
            ClusterStrategy::Blocks(k) => ClusterMap::blocks(n, (*k).min(n)),
            ClusterStrategy::Partitioned(k) => {
                let graph = CommGraph::from_application(app);
                partition(&graph, &PartitionConfig::balanced((*k).min(n), n))
            }
        }
    }
}

/// Which point-to-point network prices the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum NetworkSpec {
    /// Myrinet 10G / MX (the paper's testbed).
    #[default]
    Mx,
    /// MPICH2-nemesis over TCP on the same fabric.
    Tcp,
}

impl NetworkSpec {
    pub fn name(&self) -> &'static str {
        match self {
            NetworkSpec::Mx => "mx",
            NetworkSpec::Tcp => "tcp",
        }
    }

    pub fn build(&self) -> Box<dyn NetworkModel> {
        match self {
            NetworkSpec::Mx => Box::new(MxModel::default()),
            NetworkSpec::Tcp => Box::new(TcpModel::default()),
        }
    }
}

/// Stable-storage speed for checkpoint I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum StorageSpec {
    /// `net_model::StableStorage` defaults (1 GB/s write).
    #[default]
    Default,
    /// Parallel-filesystem aggregate: 50 GB/s write, 100 GB/s read.
    ParallelFs,
}

impl StorageSpec {
    pub fn build(&self) -> StableStorage {
        match self {
            StorageSpec::Default => StableStorage::default(),
            StorageSpec::ParallelFs => StableStorage {
                write_bytes_per_us: 50_000,
                read_bytes_per_us: 100_000,
                ..Default::default()
            },
        }
    }
}

/// Declarative protocol choice + parameters. `to_factory` erases this
/// into the object-safe [`ProtocolFactory`] the executor dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ProtocolSpec {
    /// Native MPICH2, no fault tolerance.
    Native,
    /// HydEE (the paper's protocol).
    Hydee {
        checkpoint_interval_ms: Option<u64>,
        image_bytes: u64,
        storage: StorageSpec,
        gc: bool,
    },
    /// Global coordinated checkpointing.
    Coordinated {
        checkpoint_interval_ms: Option<u64>,
        image_bytes: u64,
        storage: StorageSpec,
    },
    /// HydEE + reliable determinant writes (the event-logging ablation).
    EventLogged {
        checkpoint_interval_ms: Option<u64>,
        image_bytes: u64,
        storage: StorageSpec,
    },
}

/// Default per-rank checkpoint image: 1 MiB keeps sweep checkpoints
/// tractable; the paper-fidelity 64 MiB default of [`hydee::HydeeConfig`]
/// is opt-in via `image_bytes`.
pub const DEFAULT_IMAGE_BYTES: u64 = 1 << 20;

impl ProtocolSpec {
    /// HydEE with no periodic checkpoints (failure-free measurement mode).
    pub fn hydee() -> Self {
        ProtocolSpec::Hydee {
            checkpoint_interval_ms: None,
            image_bytes: DEFAULT_IMAGE_BYTES,
            storage: StorageSpec::Default,
            gc: true,
        }
    }

    pub fn coordinated() -> Self {
        ProtocolSpec::Coordinated {
            checkpoint_interval_ms: None,
            image_bytes: DEFAULT_IMAGE_BYTES,
            storage: StorageSpec::Default,
        }
    }

    pub fn event_logged() -> Self {
        ProtocolSpec::EventLogged {
            checkpoint_interval_ms: None,
            image_bytes: DEFAULT_IMAGE_BYTES,
            storage: StorageSpec::Default,
        }
    }

    /// Whether a checkpoint-interval override applies to this protocol
    /// (everything except `Native`). The matrix uses this to avoid
    /// expanding non-checkpointing protocols across the checkpoint axis,
    /// which would duplicate runs.
    pub fn supports_checkpointing(&self) -> bool {
        !matches!(self, ProtocolSpec::Native)
    }

    /// Copy of `self` with the checkpoint interval replaced (no-op for
    /// `Native`, which takes no checkpoints).
    pub fn with_checkpoint_ms(mut self, ms: Option<u64>) -> Self {
        match &mut self {
            ProtocolSpec::Native => {}
            ProtocolSpec::Hydee {
                checkpoint_interval_ms,
                ..
            }
            | ProtocolSpec::Coordinated {
                checkpoint_interval_ms,
                ..
            }
            | ProtocolSpec::EventLogged {
                checkpoint_interval_ms,
                ..
            } => *checkpoint_interval_ms = ms,
        }
        self
    }

    /// Name encoding every non-default parameter, so two distinct
    /// `ProtocolSpec`s never share a name (spec labels and summary cells
    /// key on it).
    pub fn name(&self) -> String {
        let ckpt = |ms: &Option<u64>| match ms {
            Some(ms) => format!(":ckpt{ms}ms"),
            None => String::new(),
        };
        let img = |bytes: &u64| {
            if *bytes == DEFAULT_IMAGE_BYTES {
                String::new()
            } else {
                format!(":img{bytes}")
            }
        };
        let stor = |s: &StorageSpec| match s {
            StorageSpec::Default => String::new(),
            StorageSpec::ParallelFs => ":pfs".into(),
        };
        match self {
            ProtocolSpec::Native => "native".into(),
            ProtocolSpec::Hydee {
                checkpoint_interval_ms,
                image_bytes,
                storage,
                gc,
            } => format!(
                "hydee{}{}{}{}",
                ckpt(checkpoint_interval_ms),
                img(image_bytes),
                stor(storage),
                if *gc { "" } else { ":nogc" }
            ),
            ProtocolSpec::Coordinated {
                checkpoint_interval_ms,
                image_bytes,
                storage,
            } => format!(
                "coordinated{}{}{}",
                ckpt(checkpoint_interval_ms),
                img(image_bytes),
                stor(storage)
            ),
            ProtocolSpec::EventLogged {
                checkpoint_interval_ms,
                image_bytes,
                storage,
            } => format!(
                "event-logged{}{}{}",
                ckpt(checkpoint_interval_ms),
                img(image_bytes),
                stor(storage)
            ),
        }
    }

    fn hydee_params(
        checkpoint_interval_ms: Option<u64>,
        image_bytes: u64,
        storage: StorageSpec,
        gc: bool,
    ) -> HydeeParams {
        HydeeParams {
            checkpoint_interval: checkpoint_interval_ms.map(SimDuration::from_ms),
            image_bytes: Some(image_bytes),
            storage: Some(storage.build()),
            disable_gc: !gc,
            ..Default::default()
        }
    }

    /// Erase into the object-safe factory.
    pub fn to_factory(self) -> Box<dyn ProtocolFactory> {
        match self {
            ProtocolSpec::Native => Box::new(NativeFactory),
            ProtocolSpec::Hydee {
                checkpoint_interval_ms,
                image_bytes,
                storage,
                gc,
            } => Box::new(HydeeFactory::new(Self::hydee_params(
                checkpoint_interval_ms,
                image_bytes,
                storage,
                gc,
            ))),
            ProtocolSpec::Coordinated {
                checkpoint_interval_ms,
                image_bytes,
                storage,
            } => Box::new(CoordinatedFactory::new(CoordinatedConfig {
                checkpoint_interval: checkpoint_interval_ms.map(SimDuration::from_ms),
                image_bytes,
                storage: storage.build(),
                ..Default::default()
            })),
            ProtocolSpec::EventLogged {
                checkpoint_interval_ms,
                image_bytes,
                storage,
            } => Box::new(EventLoggedFactory::new(
                Self::hydee_params(checkpoint_interval_ms, image_bytes, storage, true),
                DeterminantCost::default(),
            )),
        }
    }
}

/// A declarative failure schedule entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FailureSpec {
    /// Injection time in microseconds of simulated time.
    pub at_us: u64,
    /// Ranks failing concurrently at that instant.
    pub ranks: Vec<u32>,
}

impl FailureSpec {
    pub fn at_ms(ms: u64, ranks: Vec<u32>) -> Self {
        FailureSpec {
            at_us: ms * 1000,
            ranks,
        }
    }

    pub fn to_event(&self) -> FailureEvent {
        FailureEvent {
            at: SimTime::from_us(self.at_us),
            ranks: self.ranks.iter().copied().map(Rank).collect(),
        }
    }

    pub fn name(&self) -> String {
        format!(
            "fail@{}us:r{}",
            self.at_us,
            self.ranks
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("+")
        )
    }
}

/// One declarative run: the unit the executor consumes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioSpec {
    pub workload: WorkloadSpec,
    pub protocol: ProtocolSpec,
    pub clusters: ClusterStrategy,
    pub network: NetworkSpec,
    pub failures: Vec<FailureSpec>,
    /// `false`: static clustering analysis only, no simulation (Table I).
    pub simulate: bool,
    /// Engine runaway guard override.
    pub max_events: Option<u64>,
}

impl ScenarioSpec {
    /// A runnable default: simulate under MX with no failures.
    pub fn new(workload: WorkloadSpec, protocol: ProtocolSpec, clusters: ClusterStrategy) -> Self {
        ScenarioSpec {
            workload,
            protocol,
            clusters,
            network: NetworkSpec::Mx,
            failures: Vec::new(),
            simulate: true,
            max_events: None,
        }
    }

    /// Deterministic human-readable label, unique within a matrix.
    pub fn label(&self) -> String {
        let mut s = format!(
            "{}/{}/{}/{}",
            self.workload.name(),
            self.protocol.name(),
            self.clusters.name(),
            self.network.name()
        );
        for f in &self.failures {
            s.push('/');
            s.push_str(&f.name());
        }
        if !self.simulate {
            s.push_str("/static");
        }
        s
    }

    /// Engine configuration for this spec.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig {
            det_mode: DetMode::SendDeterministic,
            network: self.network.build(),
            ..Default::default()
        };
        if let Some(m) = self.max_events {
            cfg.max_events = m;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_strategies_resolve() {
        let app = WorkloadSpec::NetPipe {
            rounds: 1,
            bytes: 64,
        }
        .build();
        assert_eq!(ClusterStrategy::Single.resolve(&app).n_clusters(), 1);
        assert_eq!(ClusterStrategy::PerRank.resolve(&app).n_clusters(), 2);
        assert_eq!(ClusterStrategy::Blocks(2).resolve(&app).n_clusters(), 2);
        // k is clamped to n_ranks.
        assert_eq!(ClusterStrategy::Blocks(64).resolve(&app).n_clusters(), 2);
        assert_eq!(
            ClusterStrategy::Partitioned(2).resolve(&app).n_clusters(),
            2
        );
    }

    #[test]
    fn labels_are_distinct_across_axes() {
        let w = WorkloadSpec::NetPipe {
            rounds: 1,
            bytes: 64,
        };
        let a = ScenarioSpec::new(w.clone(), ProtocolSpec::Native, ClusterStrategy::Single);
        let mut b = a.clone();
        b.protocol = ProtocolSpec::hydee();
        let mut c = a.clone();
        c.failures = vec![FailureSpec::at_ms(1, vec![0])];
        let mut d = a.clone();
        d.simulate = false;
        let labels = [a.label(), b.label(), c.label(), d.label()];
        let set: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len(), "{labels:?}");
    }

    #[test]
    fn protocol_names_encode_every_parameter() {
        let variants = [
            ProtocolSpec::hydee(),
            ProtocolSpec::hydee().with_checkpoint_ms(Some(100)),
            ProtocolSpec::Hydee {
                checkpoint_interval_ms: None,
                image_bytes: DEFAULT_IMAGE_BYTES,
                storage: StorageSpec::ParallelFs,
                gc: true,
            },
            ProtocolSpec::Hydee {
                checkpoint_interval_ms: None,
                image_bytes: 64 << 20,
                storage: StorageSpec::Default,
                gc: true,
            },
            ProtocolSpec::Hydee {
                checkpoint_interval_ms: None,
                image_bytes: DEFAULT_IMAGE_BYTES,
                storage: StorageSpec::Default,
                gc: false,
            },
            ProtocolSpec::coordinated(),
            ProtocolSpec::event_logged(),
        ];
        let names: std::collections::BTreeSet<String> = variants.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), variants.len(), "{names:?}");
    }

    #[test]
    fn checkpoint_override_only_touches_checkpointing_protocols() {
        assert_eq!(
            ProtocolSpec::Native.with_checkpoint_ms(Some(5)),
            ProtocolSpec::Native
        );
        let h = ProtocolSpec::hydee().with_checkpoint_ms(Some(5));
        match h {
            ProtocolSpec::Hydee {
                checkpoint_interval_ms,
                ..
            } => assert_eq!(checkpoint_interval_ms, Some(5)),
            other => panic!("{other:?}"),
        }
    }
}
