//! Declarative description of one experiment run.
//!
//! A [`ScenarioSpec`] is plain data: a named workload, a protocol
//! parameterisation, a clustering strategy, a network model and a failure
//! schedule. Specs are `Clone + Send + Sync`, so the executor can fan a
//! batch out across threads, and every constituent resolves
//! deterministically — the same spec always produces the same run.

use clustering::{partition, CommGraph, PartitionConfig};
use det_sim::{SimDuration, SimTime};
use mps_sim::{
    Application, Cascade, CheckpointPolicyConfig, ClusterMap, CorrelatedCluster, DetMode,
    FailureModel, FixedSchedule, PoissonPerRank, Rank, SimConfig,
};
use net_model::{MxModel, NetworkModel, StableStorage, TcpModel, Topology, TopologyKind};
use protocols::{
    CoordinatedConfig, CoordinatedFactory, DeterminantCost, EventLoggedFactory, FailureEvent,
    HydeeFactory, HydeeParams, NativeFactory, ProtocolFactory,
};
use serde::Serialize;
use workloads::WorkloadSpec;

/// Strict unsigned decimal used by every axis parser: ASCII digits only.
/// Rejects the leading `+`, embedded whitespace and empty strings that
/// `u64::from_str` would otherwise accept, so axis names stay canonical
/// (`parse(name()) == self` and nothing else sneaks through).
fn parse_digits<T: std::str::FromStr>(s: &str) -> Option<T> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

/// How ranks are grouped into clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ClusterStrategy {
    /// Everyone in one cluster (pure coordinated checkpointing).
    Single,
    /// One cluster per rank (pure message logging).
    PerRank,
    /// `k` contiguous equal blocks.
    Blocks(usize),
    /// The Table-I pipeline: communication-graph partitioning into `k`
    /// balanced clusters.
    Partitioned(usize),
}

impl ClusterStrategy {
    pub fn name(&self) -> String {
        match self {
            ClusterStrategy::Single => "single".into(),
            ClusterStrategy::PerRank => "per-rank".into(),
            ClusterStrategy::Blocks(k) => format!("blocks{k}"),
            ClusterStrategy::Partitioned(k) => format!("part{k}"),
        }
    }

    /// Parse a clustering axis value: `single`, `per-rank`,
    /// `blocks<k>` / `part<k>` (canonical, what `name` emits) or the
    /// sweep-CLI spellings `blocks:<k>` / `part:<k>`.
    pub fn parse(s: &str) -> Result<ClusterStrategy, String> {
        let s = s.trim();
        match s {
            "single" => return Ok(ClusterStrategy::Single),
            "per-rank" => return Ok(ClusterStrategy::PerRank),
            _ => {}
        }
        let keyed = |prefix: &str| -> Option<&str> {
            let rest = s.strip_prefix(prefix)?;
            Some(rest.strip_prefix(':').unwrap_or(rest))
        };
        let (variant, k): (fn(usize) -> ClusterStrategy, &str) = if let Some(k) = keyed("blocks") {
            (ClusterStrategy::Blocks, k)
        } else if let Some(k) = keyed("part") {
            (ClusterStrategy::Partitioned, k)
        } else {
            return Err(format!(
                "unknown clustering `{s}` (want single | per-rank | blocks<k> | part<k>)"
            ));
        };
        let k: usize = parse_digits(k)
            .ok_or_else(|| format!("bad cluster count `{k}` in `{s}` (want a positive integer)"))?;
        if k == 0 {
            return Err(format!("`{s}` needs at least one cluster"));
        }
        Ok(variant(k))
    }

    /// Resolve to a concrete map for `app`. Deterministic.
    pub fn resolve(&self, app: &Application) -> ClusterMap {
        let n = app.n_ranks();
        match self {
            ClusterStrategy::Single => ClusterMap::single(n),
            ClusterStrategy::PerRank => ClusterMap::per_rank(n),
            ClusterStrategy::Blocks(k) => ClusterMap::blocks(n, (*k).min(n)),
            ClusterStrategy::Partitioned(k) => {
                let graph = CommGraph::from_application(app);
                partition(&graph, &PartitionConfig::balanced((*k).min(n), n))
            }
        }
    }

    /// Cluster count [`ClusterStrategy::resolve`] will produce for an
    /// `n_ranks`-rank workload, without building the application (used
    /// by the sweep CLI to warn about `--shards` clamping up front).
    pub fn n_clusters_for(&self, n_ranks: usize) -> usize {
        match self {
            ClusterStrategy::Single => 1,
            ClusterStrategy::PerRank => n_ranks,
            ClusterStrategy::Blocks(k) | ClusterStrategy::Partitioned(k) => (*k).min(n_ranks),
        }
    }
}

/// Which point-to-point network prices the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum NetworkSpec {
    /// Myrinet 10G / MX (the paper's testbed).
    #[default]
    Mx,
    /// MPICH2-nemesis over TCP on the same fabric.
    Tcp,
}

impl NetworkSpec {
    pub fn name(&self) -> &'static str {
        match self {
            NetworkSpec::Mx => "mx",
            NetworkSpec::Tcp => "tcp",
        }
    }

    /// Parse a network axis value (`mx` | `tcp`).
    pub fn parse(s: &str) -> Result<NetworkSpec, String> {
        match s.trim() {
            "mx" => Ok(NetworkSpec::Mx),
            "tcp" => Ok(NetworkSpec::Tcp),
            other => Err(format!("unknown network `{other}` (want mx | tcp)")),
        }
    }

    pub fn build(&self) -> Box<dyn NetworkModel> {
        match self {
            NetworkSpec::Mx => Box::new(MxModel::default()),
            NetworkSpec::Tcp => Box::new(TcpModel::default()),
        }
    }
}

/// Which interconnect topology prices `(src, dst)` pairs (DESIGN.md
/// §2.9). `Flat` is the byte-identical oracle of the plain size-only
/// network model; the other variants tier traffic by the link classes
/// separating the endpoints' clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum TopologySpec {
    /// Uniform all-to-all pricing (the pre-topology behaviour).
    #[default]
    Flat,
    /// Intra-cluster vs inter-cluster, one switch level.
    TwoLevel,
    /// k-ary fat tree over clusters; cost grows with tree distance.
    FatTree { k: u32 },
    /// Dragonfly with `g` groups of clusters: local vs global links.
    Dragonfly { g: u32 },
}

impl TopologySpec {
    /// Canonical name; [`TopologySpec::parse`] round-trips it.
    pub fn name(&self) -> String {
        match self {
            TopologySpec::Flat => "flat".into(),
            TopologySpec::TwoLevel => "two-level".into(),
            TopologySpec::FatTree { k } => format!("fat-tree:{k}"),
            TopologySpec::Dragonfly { g } => format!("dragonfly:{g}"),
        }
    }

    /// Parse a topology axis value:
    /// `flat | two-level | fat-tree:<k> | dragonfly:<g>`.
    pub fn parse(s: &str) -> Result<TopologySpec, String> {
        let s = s.trim();
        match s {
            "flat" => return Ok(TopologySpec::Flat),
            "two-level" => return Ok(TopologySpec::TwoLevel),
            _ => {}
        }
        let err = || {
            format!(
                "unknown topology `{s}` \
                 (want flat | two-level | fat-tree:<k> | dragonfly:<g>)"
            )
        };
        let (kind, arg) = s.split_once(':').ok_or_else(err)?;
        let n: u32 = parse_digits(arg)
            .ok_or_else(|| format!("bad parameter `{arg}` in `{s}` (want a positive integer)"))?;
        match kind {
            "fat-tree" => {
                if n < 2 {
                    return Err(format!("`{s}` needs arity k >= 2"));
                }
                Ok(TopologySpec::FatTree { k: n })
            }
            "dragonfly" => {
                if n == 0 {
                    return Err(format!("`{s}` needs at least one group"));
                }
                Ok(TopologySpec::Dragonfly { g: n })
            }
            _ => Err(err()),
        }
    }

    fn kind(&self) -> TopologyKind {
        match self {
            TopologySpec::Flat => TopologyKind::Flat,
            TopologySpec::TwoLevel => TopologyKind::TwoLevel,
            TopologySpec::FatTree { k } => TopologyKind::FatTree { k: *k },
            TopologySpec::Dragonfly { g } => TopologyKind::Dragonfly { g: *g },
        }
    }

    /// Resolve against the run's base network model and rank->cluster
    /// assignment. Deterministic.
    pub fn build(&self, base: std::sync::Arc<dyn NetworkModel>, cluster_of: Vec<u32>) -> Topology {
        Topology::new(self.kind(), base, cluster_of)
    }
}

impl std::fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Stable-storage speed for checkpoint I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum StorageSpec {
    /// `net_model::StableStorage` defaults (1 GB/s write).
    #[default]
    Default,
    /// Parallel-filesystem aggregate: 50 GB/s write, 100 GB/s read.
    ParallelFs,
}

impl StorageSpec {
    pub fn build(&self) -> StableStorage {
        match self {
            StorageSpec::Default => StableStorage::default(),
            StorageSpec::ParallelFs => StableStorage {
                write_bytes_per_us: 50_000,
                read_bytes_per_us: 100_000,
                ..Default::default()
            },
        }
    }
}

/// Declarative checkpoint-scheduling policy (DESIGN.md §2.4) — a
/// sweepable matrix axis. [`CheckpointPolicySpec::name`] and
/// [`CheckpointPolicySpec::parse`] are true inverses (pinned by
/// proptest); `to_config` resolves into the engine-level
/// [`mps_sim::CheckpointPolicyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum CheckpointPolicySpec {
    /// No periodic checkpoints (only the implicit t=0 one).
    #[default]
    None,
    /// Fixed interval; `first_ms`/`stagger_ms` override the protocol's
    /// default first-checkpoint time and per-cluster stagger.
    Periodic {
        interval_ms: u64,
        first_ms: Option<u64>,
        stagger_ms: Option<u64>,
    },
    /// Young's optimal interval, derived per run from the failure
    /// model's expected rate and the measured checkpoint cost.
    YoungDaly {
        first_ms: Option<u64>,
        stagger_ms: Option<u64>,
    },
    /// Checkpoint each time a cluster's sender logs grow by
    /// `budget_bytes` since its last checkpoint.
    LogPressure { budget_bytes: u64 },
}

impl CheckpointPolicySpec {
    pub fn periodic(interval_ms: u64) -> Self {
        CheckpointPolicySpec::Periodic {
            interval_ms,
            first_ms: None,
            stagger_ms: None,
        }
    }

    /// Canonical name; [`CheckpointPolicySpec::parse`] round-trips it.
    pub fn name(&self) -> String {
        let opt = |key: &str, f: &Option<u64>| match f {
            Some(ms) => format!(":{key}={ms}"),
            None => String::new(),
        };
        match self {
            CheckpointPolicySpec::None => "none".into(),
            CheckpointPolicySpec::Periodic {
                interval_ms,
                first_ms,
                stagger_ms,
            } => format!(
                "periodic:interval={interval_ms}{}{}",
                opt("first", first_ms),
                opt("stagger", stagger_ms)
            ),
            CheckpointPolicySpec::YoungDaly {
                first_ms,
                stagger_ms,
            } => format!(
                "young-daly{}{}",
                opt("first", first_ms),
                opt("stagger", stagger_ms)
            ),
            CheckpointPolicySpec::LogPressure { budget_bytes } => {
                format!("log-pressure:budget={budget_bytes}")
            }
        }
    }

    /// Parse a checkpoint-policy axis value: `none`,
    /// `periodic:interval=<ms>[:first=<ms>]`, `young-daly[:first=<ms>]`
    /// or `log-pressure:budget=<bytes>`. Strict: every `:`-segment must
    /// be a known `key=value`, each key at most once — trailing or
    /// doubled separators and repeated keys are errors, not noise.
    pub fn parse(s: &str) -> Result<CheckpointPolicySpec, String> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(CheckpointPolicySpec::None);
        }
        let (kind, rest) = match s.split_once(':') {
            Some((kind, rest)) => (kind, Some(rest)),
            None => (s, None),
        };
        if !matches!(kind, "periodic" | "young-daly" | "log-pressure") {
            return Err(format!(
                "unknown checkpoint policy `{kind}` in `{s}` \
                 (want none | periodic | young-daly | log-pressure)"
            ));
        }
        let mut interval_ms = None;
        let mut first_ms = None;
        let mut stagger_ms = None;
        let mut budget_bytes = None;
        let mut seen: Vec<&str> = Vec::new();
        for part in rest.into_iter().flat_map(|r| r.split(':')) {
            if part.is_empty() {
                return Err(format!(
                    "empty parameter segment in `{s}` (stray or trailing `:`)"
                ));
            }
            let (key, value) = part.split_once('=').ok_or_else(|| {
                format!("bad policy parameter `{part}` in `{s}` (want key=value)")
            })?;
            if seen.contains(&key) {
                return Err(format!("duplicate `{key}=` in `{s}`"));
            }
            seen.push(key);
            let parsed: u64 = parse_digits(value)
                .ok_or_else(|| format!("bad value `{value}` for `{key}` in `{s}`"))?;
            // Millisecond times convert to picoseconds (x1e9) at build
            // time: reject here anything that would wrap there.
            let ms_fits = |v: u64| v.checked_mul(1_000_000_000).is_some();
            match key {
                "interval" if kind == "periodic" => {
                    if parsed == 0 {
                        return Err(format!("`{s}` needs a positive interval"));
                    }
                    if !ms_fits(parsed) {
                        return Err(format!(
                            "`interval={parsed}` in `{s}` overflows simulated time"
                        ));
                    }
                    interval_ms = Some(parsed);
                }
                "first" if kind != "log-pressure" => {
                    if !ms_fits(parsed) {
                        return Err(format!(
                            "`first={parsed}` in `{s}` overflows simulated time"
                        ));
                    }
                    first_ms = Some(parsed);
                }
                "stagger" if kind != "log-pressure" => {
                    if !ms_fits(parsed) {
                        return Err(format!(
                            "`stagger={parsed}` in `{s}` overflows simulated time"
                        ));
                    }
                    stagger_ms = Some(parsed);
                }
                "budget" if kind == "log-pressure" => {
                    if parsed == 0 {
                        return Err(format!("`{s}` needs a positive budget"));
                    }
                    budget_bytes = Some(parsed);
                }
                other => return Err(format!("unknown policy parameter `{other}` in `{s}`")),
            }
        }
        Ok(match kind {
            "periodic" => CheckpointPolicySpec::Periodic {
                interval_ms: interval_ms
                    .ok_or_else(|| format!("policy `{s}` needs interval=<ms>"))?,
                first_ms,
                stagger_ms,
            },
            "young-daly" => CheckpointPolicySpec::YoungDaly {
                first_ms,
                stagger_ms,
            },
            _ => CheckpointPolicySpec::LogPressure {
                budget_bytes: budget_bytes
                    .ok_or_else(|| format!("policy `{s}` needs budget=<bytes>"))?,
            },
        })
    }

    /// Resolve into the engine-level policy configuration.
    pub fn to_config(self) -> CheckpointPolicyConfig {
        let first = |ms: Option<u64>| ms.map(SimTime::from_ms);
        let stagger = |ms: Option<u64>| ms.map(SimDuration::from_ms);
        match self {
            CheckpointPolicySpec::None => CheckpointPolicyConfig::Disabled,
            CheckpointPolicySpec::Periodic {
                interval_ms,
                first_ms,
                stagger_ms,
            } => CheckpointPolicyConfig::Periodic {
                interval: SimDuration::from_ms(interval_ms),
                first: first(first_ms),
                stagger: stagger(stagger_ms),
            },
            CheckpointPolicySpec::YoungDaly {
                first_ms,
                stagger_ms,
            } => CheckpointPolicyConfig::YoungDaly {
                first: first(first_ms),
                stagger: stagger(stagger_ms),
            },
            CheckpointPolicySpec::LogPressure { budget_bytes } => {
                CheckpointPolicyConfig::LogPressure { budget_bytes }
            }
        }
    }
}

impl std::fmt::Display for CheckpointPolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Declarative protocol choice + parameters. `to_factory` erases this
/// into the object-safe [`ProtocolFactory`] the executor dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ProtocolSpec {
    /// Native MPICH2, no fault tolerance.
    Native,
    /// HydEE (the paper's protocol).
    Hydee {
        checkpoint: CheckpointPolicySpec,
        image_bytes: u64,
        storage: StorageSpec,
        gc: bool,
    },
    /// Global coordinated checkpointing.
    Coordinated {
        checkpoint: CheckpointPolicySpec,
        image_bytes: u64,
        storage: StorageSpec,
    },
    /// HydEE + reliable determinant writes (the event-logging ablation).
    EventLogged {
        checkpoint: CheckpointPolicySpec,
        image_bytes: u64,
        storage: StorageSpec,
    },
}

/// Default per-rank checkpoint image: 1 MiB keeps sweep checkpoints
/// tractable; the paper-fidelity 64 MiB default of [`hydee::HydeeConfig`]
/// is opt-in via `image_bytes`.
pub const DEFAULT_IMAGE_BYTES: u64 = 1 << 20;

impl ProtocolSpec {
    /// HydEE with no periodic checkpoints (failure-free measurement mode).
    pub fn hydee() -> Self {
        ProtocolSpec::Hydee {
            checkpoint: CheckpointPolicySpec::None,
            image_bytes: DEFAULT_IMAGE_BYTES,
            storage: StorageSpec::Default,
            gc: true,
        }
    }

    pub fn coordinated() -> Self {
        ProtocolSpec::Coordinated {
            checkpoint: CheckpointPolicySpec::None,
            image_bytes: DEFAULT_IMAGE_BYTES,
            storage: StorageSpec::Default,
        }
    }

    pub fn event_logged() -> Self {
        ProtocolSpec::EventLogged {
            checkpoint: CheckpointPolicySpec::None,
            image_bytes: DEFAULT_IMAGE_BYTES,
            storage: StorageSpec::Default,
        }
    }

    /// Whether a checkpoint-policy override applies to this protocol
    /// (everything except `Native`). The matrix uses this to avoid
    /// expanding non-checkpointing protocols across the checkpoint axis,
    /// which would duplicate runs.
    pub fn supports_checkpointing(&self) -> bool {
        !matches!(self, ProtocolSpec::Native)
    }

    /// The protocol's checkpoint policy (`None` variant for `Native`).
    pub fn checkpoint_policy(&self) -> CheckpointPolicySpec {
        match self {
            ProtocolSpec::Native => CheckpointPolicySpec::None,
            ProtocolSpec::Hydee { checkpoint, .. }
            | ProtocolSpec::Coordinated { checkpoint, .. }
            | ProtocolSpec::EventLogged { checkpoint, .. } => *checkpoint,
        }
    }

    /// Copy of `self` with the checkpoint policy replaced (no-op for
    /// `Native`, which takes no checkpoints).
    pub fn with_policy(mut self, policy: CheckpointPolicySpec) -> Self {
        match &mut self {
            ProtocolSpec::Native => {}
            ProtocolSpec::Hydee { checkpoint, .. }
            | ProtocolSpec::Coordinated { checkpoint, .. }
            | ProtocolSpec::EventLogged { checkpoint, .. } => *checkpoint = policy,
        }
        self
    }

    /// Copy of `self` with the checkpoint interval replaced — sugar for
    /// [`ProtocolSpec::with_policy`] with a periodic policy (`None`
    /// disables periodic checkpoints).
    pub fn with_checkpoint_ms(self, ms: Option<u64>) -> Self {
        self.with_policy(match ms {
            Some(interval_ms) => CheckpointPolicySpec::periodic(interval_ms),
            None => CheckpointPolicySpec::None,
        })
    }

    /// Copy of `self` with the per-rank checkpoint image size replaced
    /// (no-op for `Native`, which never checkpoints).
    pub fn with_image_bytes(mut self, bytes: u64) -> Self {
        match &mut self {
            ProtocolSpec::Native => {}
            ProtocolSpec::Hydee { image_bytes, .. }
            | ProtocolSpec::Coordinated { image_bytes, .. }
            | ProtocolSpec::EventLogged { image_bytes, .. } => *image_bytes = bytes,
        }
        self
    }

    /// Parse a protocol axis value — the inverse of
    /// [`ProtocolSpec::name`]. The family (`native` | `hydee` |
    /// `coordinated` | `event-logged`) is followed by `:`-separated
    /// parameter segments in any order:
    ///
    /// ```text
    /// ckpt<ms>ms                      periodic checkpoints every <ms>
    /// periodic|young-daly|log-pressure[...key=value...]
    ///                                 full checkpoint-policy form
    /// none                            explicitly no checkpoints
    /// img<bytes>                      per-rank checkpoint image size
    /// pfs                             parallel-filesystem storage
    /// nogc                            disable sender-log GC (hydee only)
    /// ```
    pub fn parse(s: &str) -> Result<ProtocolSpec, String> {
        let s = s.trim();
        let segs: Vec<&str> = s.split(':').collect();
        let family = segs[0];
        if !matches!(family, "native" | "hydee" | "coordinated" | "event-logged") {
            return Err(format!(
                "unknown protocol `{family}` in `{s}` \
                 (want native | hydee | coordinated | event-logged)"
            ));
        }
        let mut checkpoint: Option<CheckpointPolicySpec> = None;
        let mut image_bytes: Option<u64> = None;
        let mut storage: Option<StorageSpec> = None;
        let mut gc: Option<bool> = None;
        let set_ckpt = |c: CheckpointPolicySpec,
                        checkpoint: &mut Option<CheckpointPolicySpec>|
         -> Result<(), String> {
            if checkpoint.replace(c).is_some() {
                return Err(format!("more than one checkpoint setting in `{s}`"));
            }
            Ok(())
        };
        let mut i = 1;
        while i < segs.len() {
            let seg = segs[i];
            if seg.is_empty() {
                return Err(format!(
                    "empty parameter segment in `{s}` (stray or trailing `:`)"
                ));
            }
            if let Some(ms) = seg.strip_prefix("ckpt").and_then(|x| x.strip_suffix("ms")) {
                let ms: u64 = parse_digits(ms)
                    .ok_or_else(|| format!("bad checkpoint interval `{seg}` in `{s}`"))?;
                let p = CheckpointPolicySpec::parse(&format!("periodic:interval={ms}"))?;
                set_ckpt(p, &mut checkpoint)?;
            } else if matches!(seg, "periodic" | "young-daly" | "log-pressure") {
                // A policy head absorbs every following key=value segment.
                let mut j = i + 1;
                while j < segs.len() && segs[j].contains('=') {
                    j += 1;
                }
                let p = CheckpointPolicySpec::parse(&segs[i..j].join(":"))?;
                set_ckpt(p, &mut checkpoint)?;
                i = j;
                continue;
            } else if seg == "none" {
                set_ckpt(CheckpointPolicySpec::None, &mut checkpoint)?;
            } else if let Some(b) = seg.strip_prefix("img") {
                let b: u64 = parse_digits(b)
                    .ok_or_else(|| format!("bad image size `{seg}` in `{s}` (want img<bytes>)"))?;
                if image_bytes.replace(b).is_some() {
                    return Err(format!("duplicate `img` in `{s}`"));
                }
            } else if seg == "pfs" {
                if storage.replace(StorageSpec::ParallelFs).is_some() {
                    return Err(format!("duplicate `pfs` in `{s}`"));
                }
            } else if seg == "nogc" {
                if gc.replace(false).is_some() {
                    return Err(format!("duplicate `nogc` in `{s}`"));
                }
            } else {
                return Err(format!(
                    "unknown protocol parameter `{seg}` in `{s}` \
                     (want ckpt<ms>ms | <policy> | img<bytes> | pfs | nogc)"
                ));
            }
            i += 1;
        }
        if family == "native" {
            if segs.len() > 1 {
                return Err(format!("`native` takes no parameters (got `{s}`)"));
            }
            return Ok(ProtocolSpec::Native);
        }
        if gc == Some(false) && family != "hydee" {
            return Err(format!("`nogc` only applies to hydee (got `{s}`)"));
        }
        let checkpoint = checkpoint.unwrap_or(CheckpointPolicySpec::None);
        let image_bytes = image_bytes.unwrap_or(DEFAULT_IMAGE_BYTES);
        let storage = storage.unwrap_or(StorageSpec::Default);
        Ok(match family {
            "hydee" => ProtocolSpec::Hydee {
                checkpoint,
                image_bytes,
                storage,
                gc: gc.unwrap_or(true),
            },
            "coordinated" => ProtocolSpec::Coordinated {
                checkpoint,
                image_bytes,
                storage,
            },
            _ => ProtocolSpec::EventLogged {
                checkpoint,
                image_bytes,
                storage,
            },
        })
    }

    /// Name encoding every non-default parameter, so two distinct
    /// `ProtocolSpec`s never share a name (spec labels and summary cells
    /// key on it).
    pub fn name(&self) -> String {
        // Plain periodic policies keep the historical `:ckpt<ms>ms`
        // segment; other policies embed their canonical name. The forms
        // never collide, so names stay injective across parameters.
        let ckpt = |p: &CheckpointPolicySpec| match p {
            CheckpointPolicySpec::None => String::new(),
            CheckpointPolicySpec::Periodic {
                interval_ms,
                first_ms: None,
                stagger_ms: None,
            } => format!(":ckpt{interval_ms}ms"),
            p => format!(":{}", p.name()),
        };
        let img = |bytes: &u64| {
            if *bytes == DEFAULT_IMAGE_BYTES {
                String::new()
            } else {
                format!(":img{bytes}")
            }
        };
        let stor = |s: &StorageSpec| match s {
            StorageSpec::Default => String::new(),
            StorageSpec::ParallelFs => ":pfs".into(),
        };
        match self {
            ProtocolSpec::Native => "native".into(),
            ProtocolSpec::Hydee {
                checkpoint,
                image_bytes,
                storage,
                gc,
            } => format!(
                "hydee{}{}{}{}",
                ckpt(checkpoint),
                img(image_bytes),
                stor(storage),
                if *gc { "" } else { ":nogc" }
            ),
            ProtocolSpec::Coordinated {
                checkpoint,
                image_bytes,
                storage,
            } => format!(
                "coordinated{}{}{}",
                ckpt(checkpoint),
                img(image_bytes),
                stor(storage)
            ),
            ProtocolSpec::EventLogged {
                checkpoint,
                image_bytes,
                storage,
            } => format!(
                "event-logged{}{}{}",
                ckpt(checkpoint),
                img(image_bytes),
                stor(storage)
            ),
        }
    }

    fn hydee_params(
        checkpoint: CheckpointPolicySpec,
        image_bytes: u64,
        storage: StorageSpec,
        gc: bool,
    ) -> HydeeParams {
        HydeeParams {
            checkpoint_policy: Some(checkpoint.to_config()),
            image_bytes: Some(image_bytes),
            storage: Some(storage.build()),
            disable_gc: !gc,
            ..Default::default()
        }
    }

    /// Erase into the object-safe factory.
    pub fn to_factory(self) -> Box<dyn ProtocolFactory> {
        match self {
            ProtocolSpec::Native => Box::new(NativeFactory),
            ProtocolSpec::Hydee {
                checkpoint,
                image_bytes,
                storage,
                gc,
            } => Box::new(HydeeFactory::new(Self::hydee_params(
                checkpoint,
                image_bytes,
                storage,
                gc,
            ))),
            ProtocolSpec::Coordinated {
                checkpoint,
                image_bytes,
                storage,
            } => Box::new(CoordinatedFactory::new(CoordinatedConfig {
                checkpoint_policy: Some(checkpoint.to_config()),
                image_bytes,
                storage: storage.build(),
                ..Default::default()
            })),
            ProtocolSpec::EventLogged {
                checkpoint,
                image_bytes,
                storage,
            } => Box::new(EventLoggedFactory::new(
                Self::hydee_params(checkpoint, image_bytes, storage, true),
                DeterminantCost::default(),
            )),
        }
    }
}

/// A declarative failure schedule entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FailureSpec {
    /// Injection time in microseconds of simulated time.
    pub at_us: u64,
    /// Ranks failing concurrently at that instant.
    pub ranks: Vec<u32>,
}

impl FailureSpec {
    pub fn at_ms(ms: u64, ranks: Vec<u32>) -> Self {
        FailureSpec {
            at_us: ms * 1000,
            ranks,
        }
    }

    pub fn at_us(us: u64, ranks: Vec<u32>) -> Self {
        FailureSpec { at_us: us, ranks }
    }

    pub fn to_event(&self) -> FailureEvent {
        FailureEvent {
            at: SimTime::from_us(self.at_us),
            ranks: self.ranks.iter().copied().map(Rank).collect(),
        }
    }

    /// Canonical name; [`FailureSpec::parse`] round-trips it.
    pub fn name(&self) -> String {
        format!(
            "fail@{}us:r{}",
            self.at_us,
            self.ranks
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("+")
        )
    }

    /// Parse one failure injection. Accepted forms:
    ///
    /// ```text
    /// fail@<t>us:r<rank>[+<rank>...]   (canonical, what `name` emits)
    /// <t>us:<ranks>  |  <t>ms:<ranks>  (explicit unit, optional `r`)
    /// <t>:<ranks>                      (legacy sweep form: milliseconds)
    /// ```
    pub fn parse(s: &str) -> Result<FailureSpec, String> {
        let s = s.trim();
        let body = s.strip_prefix("fail@").unwrap_or(s);
        let (time, ranks) = body
            .split_once(':')
            .ok_or_else(|| format!("bad failure injection `{s}` (want <time>:<ranks>)"))?;
        let (digits, to_us): (&str, u64) = if let Some(us) = time.strip_suffix("us") {
            (us, 1)
        } else if let Some(ms) = time.strip_suffix("ms") {
            (ms, 1000)
        } else {
            (time, 1000) // legacy bare number = milliseconds
        };
        let t: u64 =
            parse_digits(digits).ok_or_else(|| format!("bad failure time `{time}` in `{s}`"))?;
        let at_us = t
            .checked_mul(to_us)
            // The us -> ps conversion in `to_event` multiplies by 1e6:
            // reject here anything that would wrap there.
            .filter(|us| us.checked_mul(1_000_000).is_some())
            .ok_or_else(|| format!("failure time `{time}` in `{s}` overflows simulated time"))?;
        let ranks: Vec<u32> = ranks
            .strip_prefix('r')
            .unwrap_or(ranks)
            .split('+')
            .map(|r| parse_digits(r).ok_or_else(|| format!("bad failure rank `{r}` in `{s}`")))
            .collect::<Result<_, String>>()?;
        if ranks.is_empty() {
            return Err(format!("no ranks in failure injection `{s}`"));
        }
        Ok(FailureSpec { at_us, ranks })
    }
}

impl std::fmt::Display for FailureSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Default event cap for stochastic failure models: keeps an
/// unfortunate seed from turning a sweep cell into an endless
/// crash-recover-crash loop. For `Cascade` the cap bounds *primary*
/// failures; follow-ups add at most `4 × max` more (the chain-depth
/// limit), so the total stays finite either way.
pub const DEFAULT_MAX_FAILURES: u32 = 8;

/// Declarative fault-injection model. `build` resolves it against the
/// run's cluster map into the engine-level [`mps_sim::FailureModel`]
/// generator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum FailureModelSpec {
    /// Hand-written schedule (empty list = clean run). The equivalence
    /// oracle: reproduces the old static failure-list path bit-for-bit.
    Fixed(Vec<FailureSpec>),
    /// Independent per-rank exponential failures (`mtbf_ms` per rank).
    Poisson {
        mtbf_ms: u64,
        seed: u64,
        max_failures: u32,
    },
    /// Node/cluster-correlated failures: a failure takes down a whole
    /// cluster of the run's resolved cluster map (`mtbf_ms` per cluster).
    Correlated {
        mtbf_ms: u64,
        seed: u64,
        max_failures: u32,
    },
    /// Poisson primaries plus follow-up failures: each failure spawns,
    /// with probability `follow_pct`%, another rank's failure within
    /// `window_us` — the failure-during-recovery regime. `max_failures`
    /// caps the *primaries*; follow-up chains are depth-limited to 4
    /// per primary, so total events stay ≤ `5 × max_failures`.
    Cascade {
        mtbf_ms: u64,
        seed: u64,
        max_failures: u32,
        window_us: u64,
        follow_pct: u8,
    },
}

impl Default for FailureModelSpec {
    fn default() -> Self {
        FailureModelSpec::none()
    }
}

impl FailureModelSpec {
    /// The clean run (no failures).
    pub fn none() -> Self {
        FailureModelSpec::Fixed(Vec::new())
    }

    pub fn poisson(mtbf_ms: u64, seed: u64) -> Self {
        FailureModelSpec::Poisson {
            mtbf_ms,
            seed,
            max_failures: DEFAULT_MAX_FAILURES,
        }
    }

    pub fn correlated(mtbf_ms: u64, seed: u64) -> Self {
        FailureModelSpec::Correlated {
            mtbf_ms,
            seed,
            max_failures: DEFAULT_MAX_FAILURES,
        }
    }

    pub fn cascade(mtbf_ms: u64, seed: u64, window_us: u64, follow_pct: u8) -> Self {
        FailureModelSpec::Cascade {
            mtbf_ms,
            seed,
            max_failures: DEFAULT_MAX_FAILURES,
            window_us,
            follow_pct,
        }
    }

    /// Number of *scheduled* failure events (stochastic models report 0
    /// here; their actual injections land in the run metrics).
    pub fn scheduled_failures(&self) -> usize {
        match self {
            FailureModelSpec::Fixed(v) => v.len(),
            _ => 0,
        }
    }

    /// First scheduled rank outside `0..n_ranks`, if any. Parse cannot
    /// check this (the rank count depends on the workload axis), so the
    /// executor validates before running — a bad rank would otherwise
    /// panic inside the engine. Stochastic models draw in-range ranks by
    /// construction.
    pub fn invalid_rank(&self, n_ranks: usize) -> Option<u32> {
        match self {
            FailureModelSpec::Fixed(v) => v
                .iter()
                .flat_map(|f| f.ranks.iter())
                .copied()
                .find(|&r| r as usize >= n_ranks),
            _ => None,
        }
    }

    /// Canonical name; [`FailureModelSpec::parse`] round-trips it. The
    /// empty fixed schedule is named `none`.
    pub fn name(&self) -> String {
        let max = |m: &u32| {
            if *m == DEFAULT_MAX_FAILURES {
                String::new()
            } else {
                format!(":max={m}")
            }
        };
        match self {
            FailureModelSpec::Fixed(v) if v.is_empty() => "none".into(),
            FailureModelSpec::Fixed(v) => v
                .iter()
                .map(FailureSpec::name)
                .collect::<Vec<_>>()
                .join(","),
            FailureModelSpec::Poisson {
                mtbf_ms,
                seed,
                max_failures,
            } => format!("poisson:mtbf={mtbf_ms}:seed={seed}{}", max(max_failures)),
            FailureModelSpec::Correlated {
                mtbf_ms,
                seed,
                max_failures,
            } => format!("cluster:mtbf={mtbf_ms}:seed={seed}{}", max(max_failures)),
            FailureModelSpec::Cascade {
                mtbf_ms,
                seed,
                max_failures,
                window_us,
                follow_pct,
            } => format!(
                "cascade:mtbf={mtbf_ms}:seed={seed}:window={window_us}:follow={follow_pct}{}",
                max(max_failures)
            ),
        }
    }

    /// Parse a failure axis value: `none`, a comma-separated fixed
    /// schedule of [`FailureSpec`] injections, or a stochastic model
    /// (`poisson:...`, `cluster:...`, `cascade:...` with `mtbf=<ms>`,
    /// `seed=<n>`, optional `max=<n>`, and for cascade `window=<us>`,
    /// `follow=<pct>`).
    pub fn parse(s: &str) -> Result<FailureModelSpec, String> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Ok(FailureModelSpec::none());
        }
        let (kind, rest) = match s.split_once(':') {
            Some((kind, rest)) => (kind, Some(rest)),
            None => (s, None),
        };
        if !matches!(kind, "poisson" | "cluster" | "cascade") {
            let events = s
                .split(',')
                .map(|f| {
                    let f = f.trim();
                    if f.is_empty() {
                        return Err(format!(
                            "empty injection in schedule `{s}` (stray or trailing `,`)"
                        ));
                    }
                    FailureSpec::parse(f)
                })
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(FailureModelSpec::Fixed(events));
        }
        let mut mtbf_ms = None;
        let mut seed = 0u64;
        let mut max_failures = DEFAULT_MAX_FAILURES;
        let mut window_us = 1000u64;
        let mut follow_pct = 50u8;
        let mut seen: Vec<&str> = Vec::new();
        for part in rest.into_iter().flat_map(|r| r.split(':')) {
            if part.is_empty() {
                return Err(format!(
                    "empty parameter segment in `{s}` (stray or trailing `:`)"
                ));
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad model parameter `{part}` in `{s}` (want key=value)"))?;
            if seen.contains(&key) {
                return Err(format!("duplicate `{key}=` in `{s}`"));
            }
            seen.push(key);
            let parsed: u64 = parse_digits(value)
                .ok_or_else(|| format!("bad value `{value}` for `{key}` in `{s}`"))?;
            match key {
                "mtbf" => mtbf_ms = Some(parsed),
                "seed" => seed = parsed,
                "max" => {
                    max_failures = u32::try_from(parsed)
                        .map_err(|_| format!("`max={parsed}` in `{s}` exceeds {}", u32::MAX))?;
                }
                "window" if kind == "cascade" => window_us = parsed,
                "follow" if kind == "cascade" => {
                    if parsed > 100 {
                        return Err(format!(
                            "`follow={parsed}` in `{s}` is a percentage (0-100)"
                        ));
                    }
                    follow_pct = parsed as u8;
                }
                other => return Err(format!("unknown model parameter `{other}` in `{s}`")),
            }
        }
        let mtbf_ms = mtbf_ms.ok_or_else(|| format!("model `{s}` needs mtbf=<ms>"))?;
        if mtbf_ms == 0 {
            return Err(format!("model `{s}` needs a positive mtbf"));
        }
        // Reject values whose unit conversion overflows picoseconds at
        // build() time (ms -> ps is x1e9, us -> ps is x1e6).
        if mtbf_ms.checked_mul(1_000_000_000).is_none() {
            return Err(format!(
                "`mtbf={mtbf_ms}` in `{s}` overflows simulated time"
            ));
        }
        if kind == "cascade" {
            if window_us == 0 {
                return Err(format!("model `{s}` needs a positive window"));
            }
            if window_us.checked_mul(1_000_000).is_none() {
                return Err(format!(
                    "`window={window_us}` in `{s}` overflows simulated time"
                ));
            }
        }
        Ok(match kind {
            "poisson" => FailureModelSpec::Poisson {
                mtbf_ms,
                seed,
                max_failures,
            },
            "cluster" => FailureModelSpec::Correlated {
                mtbf_ms,
                seed,
                max_failures,
            },
            _ => FailureModelSpec::Cascade {
                mtbf_ms,
                seed,
                max_failures,
                window_us,
                follow_pct,
            },
        })
    }

    /// Resolve into the engine-level generator for a run over `clusters`.
    /// Deterministic: the spec (plus the cluster map for `Correlated`)
    /// fully determines the failure sequence.
    pub fn build(&self, clusters: &ClusterMap) -> Box<dyn FailureModel> {
        let n_ranks = clusters.n_ranks();
        match self {
            FailureModelSpec::Fixed(v) => Box::new(FixedSchedule::new(
                v.iter().map(FailureSpec::to_event).collect(),
            )),
            FailureModelSpec::Poisson {
                mtbf_ms,
                seed,
                max_failures,
            } => Box::new(
                PoissonPerRank::new(n_ranks, SimDuration::from_ms(*mtbf_ms), *seed)
                    .with_max_failures(*max_failures),
            ),
            FailureModelSpec::Correlated {
                mtbf_ms,
                seed,
                max_failures,
            } => Box::new(
                CorrelatedCluster::from_cluster_map(
                    clusters,
                    SimDuration::from_ms(*mtbf_ms),
                    *seed,
                )
                .with_max_failures(*max_failures),
            ),
            FailureModelSpec::Cascade {
                mtbf_ms,
                seed,
                max_failures,
                window_us,
                follow_pct,
            } => {
                let base = PoissonPerRank::new(n_ranks, SimDuration::from_ms(*mtbf_ms), *seed)
                    .with_max_failures(*max_failures);
                Box::new(Cascade::new(
                    Box::new(base),
                    n_ranks,
                    SimDuration::from_us(*window_us),
                    *follow_pct as f64 / 100.0,
                    *seed,
                ))
            }
        }
    }
}

/// One declarative run: the unit the executor consumes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioSpec {
    pub workload: WorkloadSpec,
    pub protocol: ProtocolSpec,
    pub clusters: ClusterStrategy,
    pub network: NetworkSpec,
    /// Interconnect topology pricing `(src, dst)` pairs over the
    /// resolved cluster map (DESIGN.md §2.9). `Flat` reproduces the
    /// size-only pricing bit-for-bit.
    pub topology: TopologySpec,
    /// Fault-injection model (fixed schedule or stochastic generator).
    pub failure_model: FailureModelSpec,
    /// `false`: static clustering analysis only, no simulation (Table I).
    pub simulate: bool,
    /// Engine runaway guard override.
    pub max_events: Option<u64>,
    /// Parallel-engine shard count (DESIGN.md §2.8): 1 = serial engine;
    /// higher values request the cluster-sharded engine (clamped to the
    /// cluster count, serial fallback under failure models — results
    /// are bit-for-bit identical either way).
    pub shards: usize,
}

impl ScenarioSpec {
    /// A runnable default: simulate under MX with no failures.
    pub fn new(workload: WorkloadSpec, protocol: ProtocolSpec, clusters: ClusterStrategy) -> Self {
        ScenarioSpec {
            workload,
            protocol,
            clusters,
            network: NetworkSpec::Mx,
            topology: TopologySpec::Flat,
            failure_model: FailureModelSpec::none(),
            simulate: true,
            max_events: None,
            shards: 1,
        }
    }

    /// Request the parallel engine with `n` cluster shards.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Replace the interconnect topology.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Replace the failure model with a fixed schedule (the pre-model
    /// call shape, kept because half the bench binaries use it).
    pub fn with_failures(mut self, failures: Vec<FailureSpec>) -> Self {
        self.failure_model = FailureModelSpec::Fixed(failures);
        self
    }

    pub fn with_failure_model(mut self, model: FailureModelSpec) -> Self {
        self.failure_model = model;
        self
    }

    /// Deterministic human-readable label, unique within a matrix.
    pub fn label(&self) -> String {
        let mut s = format!(
            "{}/{}/{}/{}",
            self.workload.name(),
            self.protocol.name(),
            self.clusters.name(),
            self.network.name()
        );
        // Flat runs keep their historical labels; only tiered
        // topologies grow a segment.
        if self.topology != TopologySpec::Flat {
            s.push('/');
            s.push_str(&self.topology.name());
        }
        match &self.failure_model {
            // Fixed schedules keep the historical one-segment-per-failure
            // labels (clean runs add nothing).
            FailureModelSpec::Fixed(v) => {
                for f in v {
                    s.push('/');
                    s.push_str(&f.name());
                }
            }
            model => {
                s.push('/');
                s.push_str(&model.name());
            }
        }
        if !self.simulate {
            s.push_str("/static");
        }
        // Serial runs keep their historical labels; only parallel
        // requests grow a segment.
        if self.shards > 1 {
            s.push_str(&format!("/shards{}", self.shards));
        }
        s
    }

    /// Engine configuration for this spec.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig {
            det_mode: DetMode::SendDeterministic,
            network: self.network.build().into(),
            ..Default::default()
        };
        if let Some(m) = self.max_events {
            cfg.max_events = m;
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_strategies_resolve() {
        let app = WorkloadSpec::NetPipe {
            rounds: 1,
            bytes: 64,
        }
        .build();
        assert_eq!(ClusterStrategy::Single.resolve(&app).n_clusters(), 1);
        assert_eq!(ClusterStrategy::PerRank.resolve(&app).n_clusters(), 2);
        assert_eq!(ClusterStrategy::Blocks(2).resolve(&app).n_clusters(), 2);
        // k is clamped to n_ranks.
        assert_eq!(ClusterStrategy::Blocks(64).resolve(&app).n_clusters(), 2);
        assert_eq!(
            ClusterStrategy::Partitioned(2).resolve(&app).n_clusters(),
            2
        );
    }

    #[test]
    fn labels_are_distinct_across_axes() {
        let w = WorkloadSpec::NetPipe {
            rounds: 1,
            bytes: 64,
        };
        let a = ScenarioSpec::new(w.clone(), ProtocolSpec::Native, ClusterStrategy::Single);
        let mut b = a.clone();
        b.protocol = ProtocolSpec::hydee();
        let mut c = a.clone();
        c.failure_model = FailureModelSpec::Fixed(vec![FailureSpec::at_ms(1, vec![0])]);
        let mut d = a.clone();
        d.simulate = false;
        let mut e = a.clone();
        e.failure_model = FailureModelSpec::poisson(500, 7);
        let labels = [a.label(), b.label(), c.label(), d.label(), e.label()];
        let set: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len(), "{labels:?}");
    }

    #[test]
    fn protocol_names_encode_every_parameter() {
        let variants = [
            ProtocolSpec::hydee(),
            ProtocolSpec::hydee().with_checkpoint_ms(Some(100)),
            ProtocolSpec::hydee().with_policy(CheckpointPolicySpec::Periodic {
                interval_ms: 100,
                first_ms: Some(2),
                stagger_ms: None,
            }),
            ProtocolSpec::hydee().with_policy(CheckpointPolicySpec::YoungDaly {
                first_ms: None,
                stagger_ms: None,
            }),
            ProtocolSpec::hydee().with_policy(CheckpointPolicySpec::LogPressure {
                budget_bytes: 1 << 20,
            }),
            ProtocolSpec::Hydee {
                checkpoint: CheckpointPolicySpec::None,
                image_bytes: DEFAULT_IMAGE_BYTES,
                storage: StorageSpec::ParallelFs,
                gc: true,
            },
            ProtocolSpec::Hydee {
                checkpoint: CheckpointPolicySpec::None,
                image_bytes: 64 << 20,
                storage: StorageSpec::Default,
                gc: true,
            },
            ProtocolSpec::Hydee {
                checkpoint: CheckpointPolicySpec::None,
                image_bytes: DEFAULT_IMAGE_BYTES,
                storage: StorageSpec::Default,
                gc: false,
            },
            ProtocolSpec::coordinated(),
            ProtocolSpec::event_logged(),
        ];
        let names: std::collections::BTreeSet<String> = variants.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), variants.len(), "{names:?}");
    }

    #[test]
    fn protocol_name_parse_round_trips() {
        let variants = [
            ProtocolSpec::Native,
            ProtocolSpec::hydee(),
            ProtocolSpec::hydee().with_checkpoint_ms(Some(100)),
            ProtocolSpec::hydee().with_policy(CheckpointPolicySpec::Periodic {
                interval_ms: 100,
                first_ms: Some(2),
                stagger_ms: Some(1),
            }),
            ProtocolSpec::hydee().with_policy(CheckpointPolicySpec::YoungDaly {
                first_ms: Some(1),
                stagger_ms: Some(0),
            }),
            ProtocolSpec::hydee().with_policy(CheckpointPolicySpec::LogPressure {
                budget_bytes: 8 << 20,
            }),
            ProtocolSpec::Hydee {
                checkpoint: CheckpointPolicySpec::periodic(5),
                image_bytes: 64 << 20,
                storage: StorageSpec::ParallelFs,
                gc: false,
            },
            ProtocolSpec::coordinated().with_checkpoint_ms(Some(100)),
            ProtocolSpec::event_logged().with_image_bytes(2 << 20),
        ];
        for p in &variants {
            let name = p.name();
            assert_eq!(
                &ProtocolSpec::parse(&name).unwrap(),
                p,
                "`{name}` round-tripped differently"
            );
        }
        // Parameter segments compose in any order.
        assert_eq!(
            ProtocolSpec::parse("hydee:pfs:ckpt100ms").unwrap(),
            ProtocolSpec::parse("hydee:ckpt100ms:pfs").unwrap()
        );
    }

    #[test]
    fn protocol_parse_rejects_garbage() {
        for bad in [
            "mpi",
            "native:ckpt5ms",
            "hydee:bogus",
            "hydee:ckpt5ms:",
            "hydee::pfs",
            "hydee:ckpt5ms:ckpt9ms",
            "hydee:ckpt5ms:young-daly",
            "hydee:ckptXms",
            "hydee:ckpt+5ms",
            "hydee:img",
            "hydee:img1:img2",
            "hydee:pfs:pfs",
            "coordinated:nogc",
            "event-logged:nogc",
        ] {
            assert!(ProtocolSpec::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn cluster_strategy_name_parse_round_trips() {
        let variants = [
            ClusterStrategy::Single,
            ClusterStrategy::PerRank,
            ClusterStrategy::Blocks(4),
            ClusterStrategy::Partitioned(16),
        ];
        for c in &variants {
            assert_eq!(&ClusterStrategy::parse(&c.name()).unwrap(), c);
        }
        // The sweep-CLI spellings stay accepted.
        assert_eq!(
            ClusterStrategy::parse("blocks:4").unwrap(),
            ClusterStrategy::Blocks(4)
        );
        assert_eq!(
            ClusterStrategy::parse("part:16").unwrap(),
            ClusterStrategy::Partitioned(16)
        );
        for bad in ["ring", "blocks", "blocks0", "part+4", "part4x", "blocks:"] {
            assert!(ClusterStrategy::parse(bad).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn topology_name_parse_round_trips() {
        let variants = [
            TopologySpec::Flat,
            TopologySpec::TwoLevel,
            TopologySpec::FatTree { k: 4 },
            TopologySpec::Dragonfly { g: 2 },
        ];
        for t in &variants {
            let name = t.name();
            assert_eq!(t.to_string(), name);
            assert_eq!(
                &TopologySpec::parse(&name).unwrap(),
                t,
                "`{name}` round-tripped differently"
            );
        }
        let names: std::collections::BTreeSet<String> = variants.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), variants.len(), "names are injective");
        for bad in [
            "mesh",
            "fat-tree",
            "fat-tree:1",
            "fat-tree:x",
            "fat-tree:+4",
            "dragonfly",
            "dragonfly:0",
            "two-level:2",
        ] {
            assert!(TopologySpec::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn topology_labels_only_tiered_runs() {
        let w = WorkloadSpec::NetPipe {
            rounds: 1,
            bytes: 64,
        };
        let flat = ScenarioSpec::new(w.clone(), ProtocolSpec::hydee(), ClusterStrategy::Blocks(2));
        let tiered = flat.clone().with_topology(TopologySpec::FatTree { k: 4 });
        assert!(!flat.label().contains("flat"), "{}", flat.label());
        assert!(tiered.label().contains("/fat-tree:4"), "{}", tiered.label());
        assert_ne!(flat.label(), tiered.label());
    }

    #[test]
    fn network_name_parse_round_trips() {
        for n in [NetworkSpec::Mx, NetworkSpec::Tcp] {
            assert_eq!(NetworkSpec::parse(n.name()).unwrap(), n);
        }
        assert!(NetworkSpec::parse("infiniband").is_err());
    }

    #[test]
    fn strict_parsers_reject_trailing_garbage_and_duplicates() {
        // Empty `:`-segments (trailing or doubled separators).
        assert!(CheckpointPolicySpec::parse("periodic:interval=5:").is_err());
        assert!(CheckpointPolicySpec::parse("periodic::interval=5").is_err());
        assert!(CheckpointPolicySpec::parse("young-daly:").is_err());
        assert!(FailureModelSpec::parse("poisson:mtbf=5::seed=1").is_err());
        assert!(FailureModelSpec::parse("poisson:mtbf=5:seed=1:").is_err());
        // Duplicate keys must error, not last-win.
        assert!(CheckpointPolicySpec::parse("periodic:interval=5:interval=9").is_err());
        assert!(CheckpointPolicySpec::parse("young-daly:first=1:first=2").is_err());
        assert!(FailureModelSpec::parse("poisson:mtbf=5:mtbf=6:seed=1").is_err());
        // Non-canonical numerics (`u64::from_str` would take `+5`).
        assert!(CheckpointPolicySpec::parse("periodic:interval=+5").is_err());
        assert!(FailureModelSpec::parse("poisson:mtbf=+5:seed=1").is_err());
        assert!(FailureSpec::parse("+5:1").is_err());
        assert!(FailureSpec::parse("5:+1").is_err());
        assert!(FailureSpec::parse("5:1 ").is_ok(), "outer trim still fine");
        // Stray commas in fixed schedules.
        assert!(FailureModelSpec::parse("5:1,").is_err());
        assert!(FailureModelSpec::parse(",5:1").is_err());
        assert!(FailureModelSpec::parse("5:1,,6:2").is_err());
    }

    #[test]
    fn failure_spec_parse_accepts_all_forms() {
        let want = FailureSpec::at_ms(195, vec![7]);
        for form in ["fail@195000us:r7", "195000us:7", "195ms:r7", "195:7"] {
            assert_eq!(FailureSpec::parse(form).unwrap(), want, "{form}");
        }
        let multi = FailureSpec::at_us(1500, vec![0, 3, 9]);
        assert_eq!(FailureSpec::parse("fail@1500us:r0+3+9").unwrap(), multi);
        assert_eq!(FailureSpec::parse(&multi.name()).unwrap(), multi);
        assert!(FailureSpec::parse("xyz").is_err());
        assert!(FailureSpec::parse("5:").is_err());
        assert!(FailureSpec::parse(":3").is_err());
    }

    #[test]
    fn failure_model_name_parse_round_trips() {
        let models = [
            FailureModelSpec::none(),
            FailureModelSpec::Fixed(vec![
                FailureSpec::at_us(300, vec![2]),
                FailureSpec::at_ms(2, vec![0, 1]),
            ]),
            FailureModelSpec::poisson(500, 7),
            FailureModelSpec::Poisson {
                mtbf_ms: 500,
                seed: 7,
                max_failures: 2,
            },
            FailureModelSpec::correlated(1000, 9),
            FailureModelSpec::cascade(800, 3, 250, 75),
        ];
        for m in &models {
            let name = m.name();
            assert_eq!(
                &FailureModelSpec::parse(&name).unwrap(),
                m,
                "`{name}` round-tripped differently"
            );
        }
        let names: std::collections::BTreeSet<String> = models.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), models.len(), "names are injective");
    }

    #[test]
    fn failure_model_parse_rejects_values_build_would_panic_on() {
        // These must be parse errors, not panics inside a rayon worker
        // when `build()` runs.
        assert!(
            FailureModelSpec::parse("poisson:seed=1").is_err(),
            "no mtbf"
        );
        assert!(FailureModelSpec::parse("poisson:mtbf=0:seed=1").is_err());
        assert!(FailureModelSpec::parse("cascade:mtbf=5:seed=1:window=0").is_err());
        assert!(
            FailureModelSpec::parse("poisson:mtbf=500:seed=1:max=4294967296").is_err(),
            "out-of-range max must error, not truncate"
        );
        assert!(
            FailureModelSpec::parse("poisson:mtbf=99999999999999999:seed=1").is_err(),
            "mtbf overflowing picoseconds must error at parse time"
        );
        assert!(
            FailureModelSpec::parse("cascade:mtbf=5:seed=1:window=99999999999999999").is_err(),
            "window overflowing picoseconds must error at parse time"
        );
    }

    #[test]
    fn failure_model_builds_against_cluster_map() {
        let map = ClusterMap::blocks(16, 4);
        // Correlated groups come from the map: every event fails 4 ranks.
        let mut model = FailureModelSpec::correlated(100, 1).build(&map);
        let ev = model.next_after(SimTime::ZERO).unwrap();
        assert_eq!(ev.ranks.len(), 4);
        // Fixed schedules resolve to exactly their events.
        let mut fixed = FailureModelSpec::Fixed(vec![FailureSpec::at_ms(1, vec![5])]).build(&map);
        let ev = fixed.next_after(SimTime::ZERO).unwrap();
        assert_eq!(ev.at, SimTime::from_ms(1));
        assert_eq!(ev.ranks, vec![Rank(5)]);
        assert!(fixed.next_after(ev.at).is_none());
    }

    #[test]
    fn checkpoint_override_only_touches_checkpointing_protocols() {
        assert_eq!(
            ProtocolSpec::Native.with_checkpoint_ms(Some(5)),
            ProtocolSpec::Native
        );
        assert_eq!(
            ProtocolSpec::Native.with_policy(CheckpointPolicySpec::YoungDaly {
                first_ms: None,
                stagger_ms: None,
            }),
            ProtocolSpec::Native
        );
        let h = ProtocolSpec::hydee().with_checkpoint_ms(Some(5));
        match h {
            ProtocolSpec::Hydee { checkpoint, .. } => {
                assert_eq!(checkpoint, CheckpointPolicySpec::periodic(5))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn checkpoint_policy_name_parse_round_trips() {
        let policies = [
            CheckpointPolicySpec::None,
            CheckpointPolicySpec::periodic(40),
            CheckpointPolicySpec::Periodic {
                interval_ms: 5,
                first_ms: Some(2),
                stagger_ms: None,
            },
            CheckpointPolicySpec::Periodic {
                interval_ms: 5,
                first_ms: Some(2),
                stagger_ms: Some(1),
            },
            CheckpointPolicySpec::YoungDaly {
                first_ms: None,
                stagger_ms: None,
            },
            CheckpointPolicySpec::YoungDaly {
                first_ms: Some(10),
                stagger_ms: Some(0),
            },
            CheckpointPolicySpec::LogPressure {
                budget_bytes: 8 << 20,
            },
        ];
        for p in &policies {
            let name = p.name();
            assert_eq!(p.to_string(), name);
            assert_eq!(
                &CheckpointPolicySpec::parse(&name).unwrap(),
                p,
                "`{name}` round-tripped differently"
            );
        }
        let names: std::collections::BTreeSet<String> = policies.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), policies.len(), "names are injective");
    }

    #[test]
    fn checkpoint_policy_parse_rejects_values_build_would_panic_on() {
        assert!(
            CheckpointPolicySpec::parse("periodic").is_err(),
            "no interval"
        );
        assert!(CheckpointPolicySpec::parse("periodic:interval=0").is_err());
        assert!(
            CheckpointPolicySpec::parse("periodic:interval=99999999999999999").is_err(),
            "interval overflowing picoseconds must error at parse time"
        );
        assert!(
            CheckpointPolicySpec::parse("log-pressure").is_err(),
            "no budget"
        );
        assert!(CheckpointPolicySpec::parse("log-pressure:budget=0").is_err());
        assert!(CheckpointPolicySpec::parse("young-daly:budget=5").is_err());
        assert!(CheckpointPolicySpec::parse("sometimes").is_err());
    }
}
