//! Live progress for sweep batches.
//!
//! [`Executor::run_with_progress`](crate::Executor::run_with_progress)
//! reports every cell start/completion through a [`ProgressSink`]. The
//! snapshot carries *wall-clock* throughput (engine events per wall
//! second across completed cells) and a naive proportional ETA — enough
//! for a human watching `sweep --progress` or a dashboard tailing the
//! JSONL heartbeat file.
//!
//! Counters are atomics updated from rayon workers; snapshots are
//! assembled under no lock, so two near-simultaneous updates may observe
//! each other's counts. That is fine — progress is advisory telemetry,
//! the *records* stay deterministic.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;

use crate::record::RunRecord;

/// One progress heartbeat: emitted when a cell starts (`phase: "start"`)
/// and when it completes (`phase: "done"`).
#[derive(Debug, Clone, Serialize)]
pub struct ProgressSnapshot {
    /// `"start"` or `"done"`.
    pub phase: String,
    /// `ScenarioSpec::label()` of the cell this heartbeat is about.
    pub cell: String,
    /// Batch size.
    pub total: usize,
    /// Cells finished so far.
    pub completed: usize,
    /// Cells currently executing.
    pub running: usize,
    /// Engine events summed over completed cells.
    pub events: u64,
    /// Wall-clock seconds since the batch started.
    pub wall_s: f64,
    /// Engine events per wall second over completed cells; 0 until the
    /// first cell completes (never NaN/inf).
    pub events_per_sec: f64,
    /// Projected wall seconds remaining, proportional to cells done; 0
    /// until the first cell completes (never NaN/inf).
    pub eta_s: f64,
}

/// Receives progress heartbeats. Implementations must tolerate calls
/// from multiple rayon workers at once.
pub trait ProgressSink: Send + Sync {
    fn update(&self, snap: &ProgressSnapshot);
}

/// Human-readable progress on stderr: one line per completed cell.
#[derive(Debug, Default)]
pub struct HumanProgress;

impl ProgressSink for HumanProgress {
    fn update(&self, snap: &ProgressSnapshot) {
        if snap.phase != "done" {
            return;
        }
        eprintln!(
            "[{}/{}] {} ({} running, {:.0} ev/s, ETA {:.1}s)",
            snap.completed, snap.total, snap.cell, snap.running, snap.events_per_sec, snap.eta_s
        );
    }
}

/// Machine-readable progress: one JSON object per heartbeat, each line
/// committed with a single `write_all` so a tailing consumer sees cells
/// as they land and can never observe half a heartbeat interleaved with
/// another worker's line. (A buffered writer would flush mid-line at
/// buffer boundaries; building the whole `{...}\n` in memory first keeps
/// every record either entirely present or entirely absent.)
pub struct JsonlProgress {
    out: Mutex<File>,
}

impl JsonlProgress {
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlProgress {
            out: Mutex::new(File::create(path)?),
        })
    }
}

impl ProgressSink for JsonlProgress {
    fn update(&self, snap: &ProgressSnapshot) {
        let mut line = serde_json::to_string(snap).expect("snapshot serializes");
        line.push('\n');
        let mut out = self.out.lock().expect("progress writer poisoned");
        // Heartbeats are best-effort: a full disk must not kill the sweep.
        let _ = out.write_all(line.as_bytes());
    }
}

/// Fan a heartbeat out to several sinks (e.g. stderr + JSONL file).
#[derive(Default)]
pub struct ProgressFanout {
    sinks: Vec<Box<dyn ProgressSink>>,
}

impl ProgressFanout {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(mut self, sink: Box<dyn ProgressSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl ProgressSink for ProgressFanout {
    fn update(&self, snap: &ProgressSnapshot) {
        for sink in &self.sinks {
            sink.update(snap);
        }
    }
}

/// Shared batch counters; one per `run_with_progress` call.
pub(crate) struct ProgressState {
    total: usize,
    started: Instant,
    completed: AtomicUsize,
    running: AtomicUsize,
    events: AtomicU64,
}

impl ProgressState {
    pub(crate) fn new(total: usize) -> Self {
        ProgressState {
            total,
            started: Instant::now(),
            completed: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            events: AtomicU64::new(0),
        }
    }

    fn snapshot(&self, phase: &str, cell: &str) -> ProgressSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let events = self.events.load(Ordering::Relaxed);
        let wall_s = self.started.elapsed().as_secs_f64();
        // Guarded rates: zero until the denominators are meaningful so a
        // heartbeat never carries NaN/inf.
        let events_per_sec = if wall_s > 0.0 && completed > 0 {
            events as f64 / wall_s
        } else {
            0.0
        };
        let eta_s = if completed > 0 {
            wall_s / completed as f64 * (self.total - completed.min(self.total)) as f64
        } else {
            0.0
        };
        ProgressSnapshot {
            phase: phase.into(),
            cell: cell.into(),
            total: self.total,
            completed,
            running: self.running.load(Ordering::Relaxed),
            events,
            wall_s,
            events_per_sec,
            eta_s,
        }
    }

    pub(crate) fn on_start(&self, sink: &dyn ProgressSink, cell: &str) {
        self.running.fetch_add(1, Ordering::Relaxed);
        sink.update(&self.snapshot("start", cell));
    }

    pub(crate) fn on_done(&self, sink: &dyn ProgressSink, record: &RunRecord) {
        self.events
            .fetch_add(record.metrics.events, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.running.fetch_sub(1, Ordering::Relaxed);
        sink.update(&self.snapshot("done", &record.scenario));
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Collects every heartbeat for assertions.
    #[derive(Default)]
    pub(crate) struct CollectSink {
        pub(crate) snaps: Mutex<Vec<ProgressSnapshot>>,
    }

    impl ProgressSink for CollectSink {
        fn update(&self, snap: &ProgressSnapshot) {
            self.snaps.lock().unwrap().push(snap.clone());
        }
    }

    #[test]
    fn state_counts_and_rates_stay_finite() {
        let state = ProgressState::new(2);
        let sink = CollectSink::default();
        state.on_start(&sink, "a");
        let rec = crate::record::tests::sample_record();
        state.on_done(&sink, &rec);
        state.on_start(&sink, "b");
        state.on_done(&sink, &rec);
        let snaps = sink.snaps.lock().unwrap();
        assert_eq!(snaps.len(), 4);
        let last = snaps.last().unwrap();
        assert_eq!(last.phase, "done");
        assert_eq!(last.completed, 2);
        assert_eq!(last.running, 0);
        for s in snaps.iter() {
            assert!(s.events_per_sec.is_finite());
            assert!(s.eta_s.is_finite());
            assert!(s.eta_s >= 0.0);
        }
    }

    #[test]
    fn eta_is_zero_before_any_completion() {
        let state = ProgressState::new(10);
        let sink = CollectSink::default();
        state.on_start(&sink, "first");
        let snaps = sink.snaps.lock().unwrap();
        assert_eq!(snaps[0].eta_s, 0.0);
        assert_eq!(snaps[0].events_per_sec, 0.0);
    }
}
