//! Cross-product expansion of experiment axes.
//!
//! A [`Matrix`] names the values of each axis; [`Matrix::expand`]
//! produces the full cross-product as concrete [`ScenarioSpec`]s in a
//! deterministic nesting order (workload slowest, failure schedule
//! fastest), so record `i` of an executor run always corresponds to spec
//! `i` of the expansion.

use crate::spec::{
    CheckpointPolicySpec, ClusterStrategy, FailureModelSpec, FailureSpec, NetworkSpec,
    ProtocolSpec, ScenarioSpec, TopologySpec,
};
use workloads::WorkloadSpec;

/// Experiment axes. Empty axes default to a singleton at expansion time
/// (documented per field), so a Matrix only names what it varies.
#[derive(Debug, Clone, Default)]
pub struct Matrix {
    /// Workloads; no default — an empty axis expands to no specs.
    pub workloads: Vec<WorkloadSpec>,
    /// Protocols; default `[ProtocolSpec::Native]`.
    pub protocols: Vec<ProtocolSpec>,
    /// Cluster strategies; default `[ClusterStrategy::Single]`.
    pub clusters: Vec<ClusterStrategy>,
    /// Networks; default `[NetworkSpec::Mx]`.
    pub networks: Vec<NetworkSpec>,
    /// Interconnect topologies; default `[TopologySpec::Flat]`.
    pub topologies: Vec<TopologySpec>,
    /// Checkpoint-scheduling policies overriding each protocol's own
    /// setting; default "leave protocols as specified". The canonical
    /// axis — the [`Matrix::checkpoint_ms`] sugar folds into it at the
    /// builder boundary.
    pub checkpoint_policies: Vec<CheckpointPolicySpec>,
    /// Failure models (fixed schedules and/or stochastic regimes);
    /// default `[no failures]`. Sweeps cross protocols × failure
    /// regimes by listing several.
    pub failure_models: Vec<FailureModelSpec>,
    /// `false`: static clustering analysis only (Table I mode).
    pub simulate: bool,
    /// Engine event-limit override applied to every spec.
    pub max_events: Option<u64>,
    /// Parallel-engine shard count applied to every spec (DESIGN.md
    /// §2.8); 0/1 = serial. Not a cross-product axis: sweeps compare
    /// engines by running the same matrix twice at different counts.
    pub shards: usize,
}

impl Matrix {
    pub fn new() -> Self {
        Matrix {
            simulate: true,
            ..Default::default()
        }
    }

    pub fn workloads(mut self, w: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads.extend(w);
        self
    }

    pub fn protocols(mut self, p: impl IntoIterator<Item = ProtocolSpec>) -> Self {
        self.protocols.extend(p);
        self
    }

    pub fn clusters(mut self, c: impl IntoIterator<Item = ClusterStrategy>) -> Self {
        self.clusters.extend(c);
        self
    }

    pub fn networks(mut self, n: impl IntoIterator<Item = NetworkSpec>) -> Self {
        self.networks.extend(n);
        self
    }

    pub fn topologies(mut self, t: impl IntoIterator<Item = TopologySpec>) -> Self {
        self.topologies.extend(t);
        self
    }

    /// Sugar, kept as a thin shim: each interval becomes one periodic
    /// (or `None` = disabled) [`CheckpointPolicySpec`] on the canonical
    /// `checkpoint_policies` axis, at its call-order position. Pinned
    /// bit-for-bit against the explicit-policy spelling by
    /// `sugar_shims_are_bit_for_bit_equal_to_the_canonical_axes`.
    pub fn checkpoint_ms(mut self, c: impl IntoIterator<Item = Option<u64>>) -> Self {
        self.checkpoint_policies
            .extend(c.into_iter().map(|ms| match ms {
                Some(interval_ms) => CheckpointPolicySpec::periodic(interval_ms),
                None => CheckpointPolicySpec::None,
            }));
        self
    }

    pub fn checkpoint_policies(
        mut self,
        p: impl IntoIterator<Item = CheckpointPolicySpec>,
    ) -> Self {
        self.checkpoint_policies.extend(p);
        self
    }

    /// Sugar, kept as a thin shim: each hand-written schedule becomes
    /// one [`FailureModelSpec::Fixed`] value on the canonical
    /// `failure_models` axis.
    pub fn failure_schedules(mut self, f: impl IntoIterator<Item = Vec<FailureSpec>>) -> Self {
        self.failure_models
            .extend(f.into_iter().map(FailureModelSpec::Fixed));
        self
    }

    pub fn failure_models(mut self, f: impl IntoIterator<Item = FailureModelSpec>) -> Self {
        self.failure_models.extend(f);
        self
    }

    pub fn static_analysis(mut self) -> Self {
        self.simulate = false;
        self
    }

    /// Run every cell on the parallel engine with `n` cluster shards.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sum over protocols of how many checkpoint-axis values apply to
    /// each: non-checkpointing protocols (Native) take exactly one point
    /// on that axis, so the expansion never duplicates a run.
    fn protocol_by_checkpoint_points(&self) -> usize {
        let protocols = self.protocols.len().max(1);
        let axis = self.checkpoint_policies.len();
        if axis == 0 {
            return protocols;
        }
        let effective = |p: &ProtocolSpec| {
            if p.supports_checkpointing() {
                axis
            } else {
                1
            }
        };
        if self.protocols.is_empty() {
            // Default axis is [Native].
            1
        } else {
            self.protocols.iter().map(effective).sum()
        }
    }

    /// Number of specs `expand` will produce.
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.protocol_by_checkpoint_points()
            * self.clusters.len().max(1)
            * self.networks.len().max(1)
            * self.topologies.len().max(1)
            * self.failure_models.len().max(1)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand the cross-product. Nesting order (slowest to fastest):
    /// workload, protocol, clusters, network, topology, checkpoint
    /// interval, failure schedule.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let protocols: &[ProtocolSpec] = if self.protocols.is_empty() {
            &[ProtocolSpec::Native]
        } else {
            &self.protocols
        };
        let clusters: &[ClusterStrategy] = if self.clusters.is_empty() {
            &[ClusterStrategy::Single]
        } else {
            &self.clusters
        };
        let networks: &[NetworkSpec] = if self.networks.is_empty() {
            &[NetworkSpec::Mx]
        } else {
            &self.networks
        };
        let topologies: &[TopologySpec] = if self.topologies.is_empty() {
            &[TopologySpec::Flat]
        } else {
            &self.topologies
        };
        // `None` here means "no override", distinct from an explicit
        // axis value of `CheckpointPolicySpec::None` (= disable periodic
        // checkpoints). A protocol that takes no checkpoints gets a
        // single no-override point so the expansion stays
        // duplicate-free.
        let ckpts_for = |p: &ProtocolSpec| -> Vec<Option<CheckpointPolicySpec>> {
            if self.checkpoint_policies.is_empty() || !p.supports_checkpointing() {
                vec![None]
            } else {
                self.checkpoint_policies.iter().map(|c| Some(*c)).collect()
            }
        };
        let no_failures: Vec<FailureModelSpec> = vec![FailureModelSpec::none()];
        let models: &[FailureModelSpec] = if self.failure_models.is_empty() {
            &no_failures
        } else {
            &self.failure_models
        };

        let mut specs = Vec::with_capacity(self.len());
        for w in &self.workloads {
            for p in protocols {
                let ckpts = ckpts_for(p);
                for c in clusters {
                    for n in networks {
                        for t in topologies {
                            for ck in &ckpts {
                                for f in models {
                                    let protocol = match ck {
                                        Some(policy) => p.with_policy(*policy),
                                        None => *p,
                                    };
                                    specs.push(ScenarioSpec {
                                        workload: w.clone(),
                                        protocol,
                                        clusters: *c,
                                        network: *n,
                                        topology: *t,
                                        failure_model: f.clone(),
                                        simulate: self.simulate,
                                        max_events: self.max_events,
                                        shards: self.shards.max(1),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::NasBench;

    #[test]
    fn empty_axes_default_to_singletons() {
        let m = Matrix::new().workloads([WorkloadSpec::NetPipe {
            rounds: 1,
            bytes: 8,
        }]);
        let specs = m.expand();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].protocol, ProtocolSpec::Native);
        assert_eq!(specs[0].clusters, ClusterStrategy::Single);
        assert_eq!(specs[0].failure_model, FailureModelSpec::none());
    }

    #[test]
    fn failure_model_axis_crosses_protocols_and_regimes() {
        let m = Matrix::new()
            .workloads([WorkloadSpec::NetPipe {
                rounds: 1,
                bytes: 8,
            }])
            .protocols([ProtocolSpec::Native, ProtocolSpec::hydee()])
            .failure_models([
                FailureModelSpec::none(),
                FailureModelSpec::poisson(500, 7),
                FailureModelSpec::correlated(500, 7),
                FailureModelSpec::cascade(500, 7, 250, 100),
            ]);
        let specs = m.expand();
        assert_eq!(specs.len(), 2 * 4);
        assert_eq!(specs.len(), m.len());
        let labels: std::collections::BTreeSet<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len());
    }

    #[test]
    fn expansion_is_full_cross_product() {
        let m = Matrix::new()
            .workloads([
                WorkloadSpec::Nas {
                    bench: NasBench::CG,
                    scale: 0.001,
                    iterations: Some(2),
                },
                WorkloadSpec::NetPipe {
                    rounds: 1,
                    bytes: 8,
                },
            ])
            .protocols([ProtocolSpec::Native, ProtocolSpec::hydee()])
            .clusters([ClusterStrategy::Single, ClusterStrategy::Blocks(4)])
            .networks([NetworkSpec::Mx, NetworkSpec::Tcp])
            .checkpoint_ms([None, Some(100)])
            .failure_schedules([vec![], vec![FailureSpec::at_ms(1, vec![0])]]);
        let specs = m.expand();
        // Native takes a single point on the checkpoint axis (1), hydee
        // the full axis (2): 2 workloads x 3 x 2 clusters x 2 networks x
        // 2 schedules.
        assert_eq!(specs.len(), 2 * 3 * 2 * 2 * 2);
        assert_eq!(specs.len(), m.len());
        let labels: std::collections::BTreeSet<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len(), "every point has a unique label");
    }

    #[test]
    fn topology_axis_crosses_and_defaults_to_flat() {
        let m = Matrix::new()
            .workloads([WorkloadSpec::NetPipe {
                rounds: 1,
                bytes: 8,
            }])
            .protocols([ProtocolSpec::hydee()])
            .clusters([ClusterStrategy::Blocks(2)])
            .topologies([
                TopologySpec::Flat,
                TopologySpec::TwoLevel,
                TopologySpec::FatTree { k: 4 },
            ]);
        let specs = m.expand();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs.len(), m.len());
        let labels: std::collections::BTreeSet<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len());
        // An empty axis expands to the flat singleton.
        let default = Matrix::new()
            .workloads([WorkloadSpec::NetPipe {
                rounds: 1,
                bytes: 8,
            }])
            .expand();
        assert_eq!(default[0].topology, TopologySpec::Flat);
    }

    #[test]
    fn checkpoint_axis_overrides_protocols() {
        let m = Matrix::new()
            .workloads([WorkloadSpec::NetPipe {
                rounds: 1,
                bytes: 8,
            }])
            .protocols([ProtocolSpec::hydee()])
            .checkpoint_ms([Some(40), Some(250)]);
        let specs = m.expand();
        assert_eq!(specs.len(), 2);
        for (spec, ms) in specs.iter().zip([40u64, 250]) {
            match spec.protocol {
                ProtocolSpec::Hydee { checkpoint, .. } => {
                    assert_eq!(checkpoint, CheckpointPolicySpec::periodic(ms))
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn sugar_shims_are_bit_for_bit_equal_to_the_canonical_axes() {
        let w = WorkloadSpec::NetPipe {
            rounds: 2,
            bytes: 512,
        };
        let fail = FailureSpec::at_us(300, vec![0]);
        let sugar = Matrix::new()
            .workloads([w.clone()])
            .protocols([ProtocolSpec::hydee()])
            .checkpoint_ms([None, Some(40)])
            .failure_schedules([vec![], vec![fail.clone()]]);
        let canonical = Matrix::new()
            .workloads([w])
            .protocols([ProtocolSpec::hydee()])
            .checkpoint_policies([
                CheckpointPolicySpec::None,
                CheckpointPolicySpec::periodic(40),
            ])
            .failure_models([
                FailureModelSpec::none(),
                FailureModelSpec::Fixed(vec![fail]),
            ]);
        let a = sugar.expand();
        let b = canonical.expand();
        assert_eq!(a, b, "shims must hit the canonical axes exactly");
        // And the runs themselves are bit-for-bit equal (digests
        // included), serialized record against serialized record.
        for (x, y) in crate::Executor::serial()
            .run(&a)
            .iter()
            .zip(&crate::Executor::serial().run(&b))
        {
            assert_eq!(
                serde_json::to_string(x).unwrap(),
                serde_json::to_string(y).unwrap()
            );
        }
    }

    #[test]
    fn policy_axis_merges_interval_sugar_and_explicit_policies() {
        let m = Matrix::new()
            .workloads([WorkloadSpec::NetPipe {
                rounds: 1,
                bytes: 8,
            }])
            .protocols([ProtocolSpec::Native, ProtocolSpec::hydee()])
            .checkpoint_ms([None, Some(40)])
            .checkpoint_policies([
                CheckpointPolicySpec::YoungDaly {
                    first_ms: None,
                    stagger_ms: None,
                },
                CheckpointPolicySpec::LogPressure {
                    budget_bytes: 1 << 20,
                },
            ]);
        let specs = m.expand();
        // Native: one point; hydee: all four axis points.
        assert_eq!(specs.len(), 1 + 4);
        assert_eq!(specs.len(), m.len());
        let policies: Vec<CheckpointPolicySpec> = specs
            .iter()
            .filter(|s| s.protocol.supports_checkpointing())
            .map(|s| s.protocol.checkpoint_policy())
            .collect();
        assert_eq!(
            policies,
            vec![
                CheckpointPolicySpec::None,
                CheckpointPolicySpec::periodic(40),
                CheckpointPolicySpec::YoungDaly {
                    first_ms: None,
                    stagger_ms: None,
                },
                CheckpointPolicySpec::LogPressure {
                    budget_bytes: 1 << 20
                },
            ]
        );
        let labels: std::collections::BTreeSet<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len(), "every point has a unique label");
    }
}
