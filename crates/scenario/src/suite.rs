//! Declarative scenario suites: experiments as checked-in files.
//!
//! A *suite file* is a TOML-flavoured document (hand-rolled parser —
//! the vendored serde only emits) that names scenarios and their matrix
//! axes using the same textual forms every [`SpecAxis`] already
//! round-trips. The compiler turns it into the existing
//! [`Matrix`]/[`ScenarioSpec`] types, so the executor, sinks, telemetry
//! and progress plumbing are untouched — a suite is exactly a batch of
//! specs with names.
//!
//! ```text
//! # fig5_netpipe.suite
//! [suite]
//! name = "fig5_netpipe"
//! include = ["common_axes.suite"]       # optional composition
//!
//! [defaults]                            # inherited by every scenario
//! workloads = ["netpipe:1", "netpipe:4096"]
//! networks  = ["mx"]
//!
//! [scenario.native]
//! protocols = ["native"]                # axes here override [defaults]
//!
//! [scenario.log]
//! protocols = ["hydee"]
//! clusters  = ["per-rank"]
//! ```
//!
//! Grammar and compile contract: DESIGN.md §2.6. Entry points:
//! [`Suite::load`] (file + `include` resolution + cycle detection),
//! [`Suite::parse_str`] (embedded text, e.g. `include_str!`),
//! [`Suite::render`] (the inverse, used by the round-trip proptest).
//! Every diagnostic is a [`SuiteError`] carrying file and line; axis
//! errors keep the [`crate::axis::ParseError`] structure (axis, token, expected
//! forms) in the message.

use std::path::{Path, PathBuf};

use crate::axis::SpecAxis;
use crate::matrix::Matrix;
use crate::spec::{
    CheckpointPolicySpec, ClusterStrategy, FailureModelSpec, NetworkSpec, ProtocolSpec,
    ScenarioSpec, TopologySpec,
};
use workloads::WorkloadSpec;

/// A compiled suite: named scenarios, each an axis [`Matrix`].
#[derive(Debug, Clone)]
pub struct Suite {
    /// Suite name (`name = "..."` in `[suite]`, else the file stem).
    pub name: String,
    /// Scenarios in definition order, included suites' scenarios first.
    pub scenarios: Vec<SuiteScenario>,
}

/// One named scenario: a matrix whose expansion is the scenario's cells.
#[derive(Debug, Clone)]
pub struct SuiteScenario {
    pub name: String,
    pub matrix: Matrix,
}

/// One runnable cell: the owning scenario's name plus the concrete spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteCell {
    pub scenario: String,
    pub spec: ScenarioSpec,
}

/// A suite-file diagnostic: file, line (0 = whole-file) and message.
/// Axis failures embed the structured [`crate::axis::ParseError`]
/// rendering, so the axis name and expected forms survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteError {
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl SuiteError {
    fn at(file: &str, line: usize, message: String) -> Self {
        SuiteError {
            file: file.to_string(),
            line,
            message,
        }
    }
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.file, self.line, self.message)
        } else {
            write!(f, "{}: {}", self.file, self.message)
        }
    }
}

impl std::error::Error for SuiteError {}

// ---------------------------------------------------------------------
// Raw document model (tokenized, before axis parsing)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Value {
    Str(String),
    List(Vec<String>),
    Bool(bool),
    Int(u64),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "a string",
            Value::List(_) => "a list",
            Value::Bool(_) => "a boolean",
            Value::Int(_) => "an integer",
        }
    }
}

#[derive(Debug)]
struct RawKv {
    key: String,
    value: Value,
    line: usize,
}

#[derive(Debug, Default)]
struct RawSuite {
    name: Option<String>,
    includes: Vec<(String, usize)>,
    defaults: Vec<RawKv>,
    /// (name, header line, keys)
    scenarios: Vec<(String, usize, Vec<RawKv>)>,
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Cut a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_quote = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `[`/`]` balance outside quotes; positive means an open list.
fn bracket_balance(text: &str) -> i64 {
    let mut depth = 0i64;
    let mut in_quote = false;
    for c in text.chars() {
        match c {
            '"' => in_quote = !in_quote,
            '[' if !in_quote => depth += 1,
            ']' if !in_quote => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Parse a `"quoted"` item starting at `rest[0] == '"'`; returns
/// (content, remainder after the closing quote).
fn take_string(rest: &str) -> Result<(String, &str), String> {
    debug_assert!(rest.starts_with('"'));
    let body = &rest[1..];
    match body.find('"') {
        Some(end) => Ok((body[..end].to_string(), &body[end + 1..])),
        None => Err("unterminated string (missing closing `\"`)".into()),
    }
}

fn parse_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if let Some(mut rest) = text.strip_prefix('[') {
        let mut items = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(after) = rest.strip_prefix(']') {
                rest = after;
                break;
            }
            if rest.starts_with('"') {
                let (item, after) = take_string(rest)?;
                items.push(item);
                rest = after.trim_start();
                if let Some(after) = rest.strip_prefix(',') {
                    rest = after;
                } else if !rest.starts_with(']') {
                    return Err(format!(
                        "expected `,` or `]` after list item, found `{}`",
                        rest.chars().next().map(String::from).unwrap_or_default()
                    ));
                }
            } else if rest.is_empty() {
                return Err("unterminated list (missing `]`)".into());
            } else {
                return Err(format!(
                    "list items must be quoted strings, found `{}`",
                    rest.split_whitespace().next().unwrap_or_default()
                ));
            }
        }
        if !rest.trim().is_empty() {
            return Err(format!("trailing characters after `]`: `{}`", rest.trim()));
        }
        return Ok(Value::List(items));
    }
    if text.starts_with('"') {
        let (s, rest) = take_string(text)?;
        if !rest.trim().is_empty() {
            return Err(format!(
                "trailing characters after string: `{}`",
                rest.trim()
            ));
        }
        return Ok(Value::Str(s));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit()) {
        if let Ok(n) = text.parse() {
            return Ok(Value::Int(n));
        }
    }
    Err(format!(
        "bad value `{text}` (want \"string\", [\"list\", ...], true/false or an integer)"
    ))
}

fn parse_raw(text: &str, file: &str) -> Result<RawSuite, SuiteError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Sect {
        None,
        Suite,
        Defaults,
        Scenario(usize),
    }
    let mut raw = RawSuite::default();
    let mut sect = Sect::None;
    let mut seen_suite = false;
    let mut seen_defaults = false;
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let lineno = i + 1;
        let t = strip_comment(lines[i]).trim().to_string();
        i += 1;
        if t.is_empty() {
            continue;
        }
        // Section headers. A stray axis list would also start with `[`,
        // but never end with `]` on a key-less line, so the `=` check
        // below still catches it with a decent message.
        if t.starts_with('[') && t.ends_with(']') && !t.contains('=') {
            let inner = &t[1..t.len() - 1];
            sect = match inner {
                "suite" => {
                    if seen_suite {
                        return Err(SuiteError::at(
                            file,
                            lineno,
                            "duplicate [suite] section".into(),
                        ));
                    }
                    seen_suite = true;
                    Sect::Suite
                }
                "defaults" => {
                    if seen_defaults {
                        return Err(SuiteError::at(
                            file,
                            lineno,
                            "duplicate [defaults] section".into(),
                        ));
                    }
                    seen_defaults = true;
                    Sect::Defaults
                }
                _ => match inner.strip_prefix("scenario.") {
                    Some(name) if is_ident(name) => {
                        if raw.scenarios.iter().any(|(n, _, _)| n == name) {
                            return Err(SuiteError::at(
                                file,
                                lineno,
                                format!("duplicate scenario `{name}`"),
                            ));
                        }
                        raw.scenarios.push((name.to_string(), lineno, Vec::new()));
                        Sect::Scenario(raw.scenarios.len() - 1)
                    }
                    Some(name) => {
                        return Err(SuiteError::at(
                            file,
                            lineno,
                            format!(
                                "bad scenario name `{name}` \
                                 (want letters, digits, `_` or `-`)"
                            ),
                        ));
                    }
                    None => {
                        return Err(SuiteError::at(
                            file,
                            lineno,
                            format!(
                                "unknown section `[{inner}]` \
                                 (want [suite], [defaults] or [scenario.<name>])"
                            ),
                        ));
                    }
                },
            };
            continue;
        }
        let Some((key, rest)) = t.split_once('=') else {
            return Err(SuiteError::at(
                file,
                lineno,
                format!("expected `key = value` or a `[section]` header, found `{t}`"),
            ));
        };
        let key = key.trim();
        if !is_ident(key) {
            return Err(SuiteError::at(file, lineno, format!("bad key `{key}`")));
        }
        // Bracketed lists may span lines: absorb until balanced.
        let mut vtext = rest.trim().to_string();
        while bracket_balance(&vtext) > 0 {
            if i >= lines.len() {
                return Err(SuiteError::at(
                    file,
                    lineno,
                    format!("unterminated list in `{key} = [...`"),
                ));
            }
            vtext.push(' ');
            vtext.push_str(strip_comment(lines[i]).trim());
            i += 1;
        }
        let value =
            parse_value(&vtext).map_err(|m| SuiteError::at(file, lineno, format!("{key}: {m}")))?;
        match sect {
            Sect::None => {
                return Err(SuiteError::at(
                    file,
                    lineno,
                    format!("`{key}` appears before any [section] header"),
                ));
            }
            Sect::Suite => match (key, value) {
                ("name", Value::Str(s)) => {
                    if raw.name.replace(s).is_some() {
                        return Err(SuiteError::at(file, lineno, "duplicate `name`".into()));
                    }
                }
                ("name", v) => {
                    return Err(SuiteError::at(
                        file,
                        lineno,
                        format!("`name` must be a string, got {}", v.kind()),
                    ));
                }
                ("include", Value::List(paths)) => {
                    raw.includes.extend(paths.into_iter().map(|p| (p, lineno)));
                }
                ("include", v) => {
                    return Err(SuiteError::at(
                        file,
                        lineno,
                        format!("`include` must be a list of paths, got {}", v.kind()),
                    ));
                }
                (other, _) => {
                    return Err(SuiteError::at(
                        file,
                        lineno,
                        format!("unknown [suite] key `{other}` (want name | include)"),
                    ));
                }
            },
            Sect::Defaults => raw.defaults.push(RawKv {
                key: key.to_string(),
                value,
                line: lineno,
            }),
            Sect::Scenario(idx) => raw.scenarios[idx].2.push(RawKv {
                key: key.to_string(),
                value,
                line: lineno,
            }),
        }
    }
    Ok(raw)
}

// ---------------------------------------------------------------------
// Compilation: raw keys -> axis sets -> Matrix
// ---------------------------------------------------------------------

/// Axis keys accepted in `[defaults]` and `[scenario.*]` sections.
const AXIS_KEYS: &str =
    "workloads | protocols | clusters | networks | topologies | checkpoint_policies | \
     failure_models | static | max_events | shards";

/// One section's axis values. `None` = not mentioned, so scenario
/// sections override `[defaults]` per key, not wholesale.
#[derive(Debug, Default, Clone)]
struct AxisSet {
    workloads: Option<Vec<WorkloadSpec>>,
    protocols: Option<Vec<ProtocolSpec>>,
    clusters: Option<Vec<ClusterStrategy>>,
    networks: Option<Vec<NetworkSpec>>,
    topologies: Option<Vec<TopologySpec>>,
    checkpoint_policies: Option<Vec<CheckpointPolicySpec>>,
    failure_models: Option<Vec<FailureModelSpec>>,
    static_only: Option<bool>,
    max_events: Option<u64>,
    shards: Option<u64>,
}

/// Parse every item of a list-valued axis key, wrapping axis errors
/// with the file/line of the key.
fn parse_axis<A: SpecAxis>(
    items: &[String],
    file: &str,
    line: usize,
) -> Result<Vec<A>, SuiteError> {
    items
        .iter()
        .map(|item| A::parse(item).map_err(|e| SuiteError::at(file, line, e.to_string())))
        .collect()
}

impl AxisSet {
    fn from_kvs(kvs: &[RawKv], file: &str) -> Result<AxisSet, SuiteError> {
        let mut set = AxisSet::default();
        for kv in kvs {
            // A single string is sugar for a one-element list.
            let items: Option<Vec<String>> = match &kv.value {
                Value::List(v) => Some(v.clone()),
                Value::Str(s) => Some(vec![s.clone()]),
                _ => None,
            };
            let listy = |items: &Option<Vec<String>>| -> Result<Vec<String>, SuiteError> {
                items.clone().ok_or_else(|| {
                    SuiteError::at(
                        file,
                        kv.line,
                        format!(
                            "`{}` must be a list of strings, got {}",
                            kv.key,
                            kv.value.kind()
                        ),
                    )
                })
            };
            let dup = |was_set: bool| -> Result<(), SuiteError> {
                if was_set {
                    Err(SuiteError::at(
                        file,
                        kv.line,
                        format!("duplicate `{}` in this section", kv.key),
                    ))
                } else {
                    Ok(())
                }
            };
            match kv.key.as_str() {
                "workloads" => {
                    dup(set.workloads.is_some())?;
                    set.workloads = Some(parse_axis(&listy(&items)?, file, kv.line)?);
                }
                "protocols" => {
                    dup(set.protocols.is_some())?;
                    set.protocols = Some(parse_axis(&listy(&items)?, file, kv.line)?);
                }
                "clusters" => {
                    dup(set.clusters.is_some())?;
                    set.clusters = Some(parse_axis(&listy(&items)?, file, kv.line)?);
                }
                "networks" => {
                    dup(set.networks.is_some())?;
                    set.networks = Some(parse_axis(&listy(&items)?, file, kv.line)?);
                }
                "topologies" => {
                    dup(set.topologies.is_some())?;
                    set.topologies = Some(parse_axis(&listy(&items)?, file, kv.line)?);
                }
                "checkpoint_policies" => {
                    dup(set.checkpoint_policies.is_some())?;
                    set.checkpoint_policies = Some(parse_axis(&listy(&items)?, file, kv.line)?);
                }
                "failure_models" => {
                    dup(set.failure_models.is_some())?;
                    set.failure_models = Some(parse_axis(&listy(&items)?, file, kv.line)?);
                }
                "static" => {
                    dup(set.static_only.is_some())?;
                    match kv.value {
                        Value::Bool(b) => set.static_only = Some(b),
                        ref v => {
                            return Err(SuiteError::at(
                                file,
                                kv.line,
                                format!("`static` must be true or false, got {}", v.kind()),
                            ));
                        }
                    }
                }
                "max_events" => {
                    dup(set.max_events.is_some())?;
                    match kv.value {
                        Value::Int(n) => set.max_events = Some(n),
                        ref v => {
                            return Err(SuiteError::at(
                                file,
                                kv.line,
                                format!("`max_events` must be an integer, got {}", v.kind()),
                            ));
                        }
                    }
                }
                "shards" => {
                    dup(set.shards.is_some())?;
                    match kv.value {
                        Value::Int(n) if n >= 1 => set.shards = Some(n),
                        Value::Int(n) => {
                            return Err(SuiteError::at(
                                file,
                                kv.line,
                                format!("`shards` must be at least 1, got {n}"),
                            ));
                        }
                        ref v => {
                            return Err(SuiteError::at(
                                file,
                                kv.line,
                                format!("`shards` must be an integer, got {}", v.kind()),
                            ));
                        }
                    }
                }
                other => {
                    return Err(SuiteError::at(
                        file,
                        kv.line,
                        format!("unknown axis key `{other}` (want {AXIS_KEYS})"),
                    ));
                }
            }
        }
        Ok(set)
    }

    /// Inheritance: every key this section sets replaces the default;
    /// unset keys fall through.
    fn or(self, defaults: &AxisSet) -> AxisSet {
        AxisSet {
            workloads: self.workloads.or_else(|| defaults.workloads.clone()),
            protocols: self.protocols.or_else(|| defaults.protocols.clone()),
            clusters: self.clusters.or_else(|| defaults.clusters.clone()),
            networks: self.networks.or_else(|| defaults.networks.clone()),
            topologies: self.topologies.or_else(|| defaults.topologies.clone()),
            checkpoint_policies: self
                .checkpoint_policies
                .or_else(|| defaults.checkpoint_policies.clone()),
            failure_models: self
                .failure_models
                .or_else(|| defaults.failure_models.clone()),
            static_only: self.static_only.or(defaults.static_only),
            max_events: self.max_events.or(defaults.max_events),
            shards: self.shards.or(defaults.shards),
        }
    }

    fn into_matrix(self) -> Matrix {
        let mut m = Matrix::new();
        m.workloads = self.workloads.unwrap_or_default();
        m.protocols = self.protocols.unwrap_or_default();
        m.clusters = self.clusters.unwrap_or_default();
        m.networks = self.networks.unwrap_or_default();
        m.topologies = self.topologies.unwrap_or_default();
        m.checkpoint_policies = self.checkpoint_policies.unwrap_or_default();
        m.failure_models = self.failure_models.unwrap_or_default();
        m.simulate = !self.static_only.unwrap_or(false);
        m.max_events = self.max_events;
        m.shards = self.shards.unwrap_or(1) as usize;
        m
    }
}

fn compile_own_scenarios(raw: &RawSuite, file: &str) -> Result<Vec<SuiteScenario>, SuiteError> {
    let defaults = AxisSet::from_kvs(&raw.defaults, file)?;
    let mut out = Vec::with_capacity(raw.scenarios.len());
    for (name, header_line, kvs) in &raw.scenarios {
        let set = AxisSet::from_kvs(kvs, file)?.or(&defaults);
        let matrix = set.into_matrix();
        if matrix.workloads.is_empty() {
            return Err(SuiteError::at(
                file,
                *header_line,
                format!(
                    "scenario `{name}` has no workloads \
                     (set `workloads = [...]` here or in [defaults])"
                ),
            ));
        }
        out.push(SuiteScenario {
            name: name.clone(),
            matrix,
        });
    }
    Ok(out)
}

fn push_unique(
    into: &mut Vec<SuiteScenario>,
    sc: SuiteScenario,
    file: &str,
    line: usize,
) -> Result<(), SuiteError> {
    if into.iter().any(|s| s.name == sc.name) {
        return Err(SuiteError::at(
            file,
            line,
            format!("scenario `{}` is defined more than once", sc.name),
        ));
    }
    into.push(sc);
    Ok(())
}

impl Suite {
    /// Compile suite text that is already in memory (`include_str!`,
    /// tests). `include` is rejected here — composition needs a
    /// filesystem; use [`Suite::load`].
    pub fn parse_str(text: &str, origin: &str) -> Result<Suite, SuiteError> {
        let raw = parse_raw(text, origin)?;
        if let Some((path, line)) = raw.includes.first() {
            return Err(SuiteError::at(
                origin,
                *line,
                format!("include = [\"{path}\"] needs file loading — use Suite::load"),
            ));
        }
        let mut scenarios = Vec::new();
        for sc in compile_own_scenarios(&raw, origin)? {
            push_unique(&mut scenarios, sc, origin, 0)?;
        }
        Ok(Suite {
            name: raw.name.unwrap_or_else(|| {
                Path::new(origin)
                    .file_stem()
                    .map_or_else(|| origin.to_string(), |s| s.to_string_lossy().into_owned())
            }),
            scenarios,
        })
    }

    /// Load a suite file, resolving `include = [...]` relative to the
    /// including file. Included suites contribute their scenarios (in
    /// include order) before the file's own; scenario names must stay
    /// unique across the composition. Cycles are detected and reported
    /// with the full include chain.
    pub fn load(path: impl AsRef<Path>) -> Result<Suite, SuiteError> {
        Self::load_inner(path.as_ref(), &mut Vec::new())
    }

    fn load_inner(path: &Path, stack: &mut Vec<PathBuf>) -> Result<Suite, SuiteError> {
        let label = path.display().to_string();
        let canon = path
            .canonicalize()
            .map_err(|e| SuiteError::at(&label, 0, format!("cannot read suite file: {e}")))?;
        if stack.contains(&canon) {
            let chain: Vec<String> = stack
                .iter()
                .map(|p| p.display().to_string())
                .chain(std::iter::once(canon.display().to_string()))
                .collect();
            return Err(SuiteError::at(
                &label,
                0,
                format!("include cycle: {}", chain.join(" -> ")),
            ));
        }
        let text = std::fs::read_to_string(&canon)
            .map_err(|e| SuiteError::at(&label, 0, format!("cannot read suite file: {e}")))?;
        let raw = parse_raw(&text, &label)?;
        let mut scenarios: Vec<SuiteScenario> = Vec::new();
        stack.push(canon);
        for (inc, line) in &raw.includes {
            let child = match path.parent() {
                Some(dir) if dir != Path::new("") => dir.join(inc),
                _ => PathBuf::from(inc),
            };
            let sub = Self::load_inner(&child, stack)?;
            for sc in sub.scenarios {
                push_unique(&mut scenarios, sc, &label, *line)?;
            }
        }
        stack.pop();
        for sc in compile_own_scenarios(&raw, &label)? {
            push_unique(&mut scenarios, sc, &label, 0)?;
        }
        Ok(Suite {
            name: raw.name.unwrap_or_else(|| {
                path.file_stem()
                    .map_or_else(|| label.clone(), |s| s.to_string_lossy().into_owned())
            }),
            scenarios,
        })
    }

    /// All cells: every scenario's matrix expanded, scenarios in order,
    /// each tagged with its scenario name. Cell order within a scenario
    /// is the matrix's deterministic expansion order.
    pub fn cells(&self) -> Vec<SuiteCell> {
        self.scenarios
            .iter()
            .flat_map(|sc| {
                sc.matrix.expand().into_iter().map(|spec| SuiteCell {
                    scenario: sc.name.clone(),
                    spec,
                })
            })
            .collect()
    }

    /// The specs alone, for callers that feed an [`crate::Executor`].
    pub fn specs(&self) -> Vec<ScenarioSpec> {
        self.cells().into_iter().map(|c| c.spec).collect()
    }

    /// Keep only the named scenarios (the `sweep --scenario` filter).
    pub fn select(&self, wanted: &[String]) -> Result<Suite, String> {
        let known: Vec<&str> = self.scenarios.iter().map(|s| s.name.as_str()).collect();
        for w in wanted {
            if !known.contains(&w.as_str()) {
                return Err(format!(
                    "no scenario `{w}` in suite `{}` (have: {})",
                    self.name,
                    known.join(", ")
                ));
            }
        }
        Ok(Suite {
            name: self.name.clone(),
            scenarios: self
                .scenarios
                .iter()
                .filter(|s| wanted.iter().any(|w| w == &s.name))
                .cloned()
                .collect(),
        })
    }

    /// Serialize scenarios back to suite text. The inverse of
    /// [`Suite::parse_str`] up to formatting: parsing the rendered text
    /// compiles to matrices with identical expansions (pinned by the
    /// suite round-trip proptest).
    pub fn render(name: &str, scenarios: &[(String, Matrix)]) -> String {
        let quote = |s: &String| format!("\"{s}\"");
        let list = |key: &str, names: &[String]| -> String {
            if names.is_empty() {
                return String::new();
            }
            let inline = names.iter().map(quote).collect::<Vec<_>>().join(", ");
            if names.len() <= 4 && inline.len() <= 72 {
                format!("{key} = [{inline}]\n")
            } else {
                let mut s = format!("{key} = [\n");
                for n in names {
                    s.push_str(&format!("  {},\n", quote(n)));
                }
                s.push_str("]\n");
                s
            }
        };
        let mut out = format!("[suite]\nname = \"{name}\"\n");
        for (sc_name, m) in scenarios {
            out.push_str(&format!("\n[scenario.{sc_name}]\n"));
            let names = |v: &[String]| v.to_vec();
            out.push_str(&list(
                "workloads",
                &names(&m.workloads.iter().map(SpecAxis::name).collect::<Vec<_>>()),
            ));
            out.push_str(&list(
                "protocols",
                &m.protocols.iter().map(SpecAxis::name).collect::<Vec<_>>(),
            ));
            out.push_str(&list(
                "clusters",
                &m.clusters.iter().map(SpecAxis::name).collect::<Vec<_>>(),
            ));
            out.push_str(&list(
                "networks",
                &m.networks.iter().map(SpecAxis::name).collect::<Vec<_>>(),
            ));
            out.push_str(&list(
                "topologies",
                &m.topologies.iter().map(SpecAxis::name).collect::<Vec<_>>(),
            ));
            out.push_str(&list(
                "checkpoint_policies",
                &m.checkpoint_policies
                    .iter()
                    .map(SpecAxis::name)
                    .collect::<Vec<_>>(),
            ));
            out.push_str(&list(
                "failure_models",
                &m.failure_models
                    .iter()
                    .map(SpecAxis::name)
                    .collect::<Vec<_>>(),
            ));
            if !m.simulate {
                out.push_str("static = true\n");
            }
            if let Some(n) = m.max_events {
                out.push_str(&format!("max_events = {n}\n"));
            }
            if m.shards > 1 {
                out.push_str(&format!("shards = {}\n", m.shards));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FailureSpec;

    const BASIC: &str = r#"
# A comment
[suite]
name = "basic"

[defaults]
workloads = ["netpipe:256:rounds=2", "netpipe:1024:rounds=2"]
networks = ["mx"]

[scenario.native]
protocols = ["native"]

[scenario.log]
protocols = ["hydee"]   # trailing comment
clusters = ["per-rank"]
max_events = 500000
"#;

    #[test]
    fn basic_suite_compiles_with_inheritance() {
        let suite = Suite::parse_str(BASIC, "basic.suite").unwrap();
        assert_eq!(suite.name, "basic");
        assert_eq!(suite.scenarios.len(), 2);
        let cells = suite.cells();
        assert_eq!(cells.len(), 4, "2 workloads x 1 protocol per scenario");
        assert_eq!(cells[0].scenario, "native");
        assert_eq!(cells[0].spec.protocol, ProtocolSpec::Native);
        assert_eq!(cells[0].spec.network, NetworkSpec::Mx);
        assert_eq!(cells[2].scenario, "log");
        assert_eq!(cells[2].spec.protocol, ProtocolSpec::hydee());
        assert_eq!(cells[2].spec.clusters, ClusterStrategy::PerRank);
        assert_eq!(cells[2].spec.max_events, Some(500_000));
        assert_eq!(cells[0].spec.max_events, None, "no inheritance upward");
    }

    #[test]
    fn scenario_axes_override_defaults_per_key() {
        let text = r#"
[defaults]
workloads = ["netpipe:64"]
protocols = ["hydee"]
clusters = ["blocks4"]

[scenario.override]
workloads = ["netpipe:128"]
"#;
        let suite = Suite::parse_str(text, "t.suite").unwrap();
        let cells = suite.cells();
        assert_eq!(cells.len(), 1);
        // Overridden key replaced, unmentioned keys inherited.
        assert_eq!(SpecAxis::name(&cells[0].spec.workload), "netpipe:128");
        assert_eq!(cells[0].spec.protocol, ProtocolSpec::hydee());
        assert_eq!(cells[0].spec.clusters, ClusterStrategy::Blocks(4));
    }

    #[test]
    fn single_string_is_one_element_list_sugar() {
        let text = r#"
[scenario.one]
workloads = "netpipe:64"
protocols = "coordinated"
static = true
"#;
        let suite = Suite::parse_str(text, "t.suite").unwrap();
        let cells = suite.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].spec.protocol, ProtocolSpec::coordinated());
        assert!(!cells[0].spec.simulate);
    }

    #[test]
    fn multi_line_lists_and_failure_models_parse() {
        let text = r#"
[scenario.frontier]
workloads = [
  "netpipe:64",
  "netpipe:128",
]
protocols = ["hydee:pfs"]
checkpoint_policies = ["periodic:interval=5", "young-daly"]
failure_models = ["poisson:mtbf=10000:seed=7:max=3", "fail@195000us:r7"]
"#;
        let suite = Suite::parse_str(text, "t.suite").unwrap();
        let cells = suite.cells();
        // 2 workloads x 2 policies x 2 failure models.
        assert_eq!(cells.len(), 8);
        assert!(cells.iter().any(|c| c.spec.failure_model
            == FailureModelSpec::Fixed(vec![FailureSpec::at_ms(195, vec![7])])));
    }

    #[test]
    fn shards_key_parses_inherits_and_rejects_zero() {
        let text = r#"
[defaults]
workloads = ["netpipe:64"]
shards = 4

[scenario.par]
protocols = ["hydee"]

[scenario.serial]
protocols = ["native"]
shards = 1
"#;
        let suite = Suite::parse_str(text, "t.suite").unwrap();
        let cells = suite.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].spec.shards, 4, "inherited from defaults");
        assert_eq!(cells[1].spec.shards, 1, "overridden per scenario");
        let err = Suite::parse_str(
            "[scenario.x]\nworkloads = [\"netpipe:64\"]\nshards = 0\n",
            "z.suite",
        )
        .unwrap_err();
        assert!(err.message.contains("at least 1"), "{err}");
    }

    #[test]
    fn topologies_key_parses_and_inherits() {
        let text = r#"
[defaults]
workloads = ["netpipe:64"]
topologies = ["flat", "fat-tree:4"]

[scenario.tiered]
protocols = ["hydee"]
clusters = ["blocks4"]

[scenario.dragon]
protocols = ["hydee"]
clusters = ["blocks4"]
topologies = ["dragonfly:2"]
"#;
        let suite = Suite::parse_str(text, "t.suite").unwrap();
        let cells = suite.cells();
        assert_eq!(cells.len(), 3, "2 inherited topologies + 1 override");
        assert_eq!(cells[0].spec.topology, TopologySpec::Flat);
        assert_eq!(cells[1].spec.topology, TopologySpec::FatTree { k: 4 });
        assert_eq!(cells[2].spec.topology, TopologySpec::Dragonfly { g: 2 });
        let err = Suite::parse_str(
            "[scenario.x]\nworkloads = [\"netpipe:64\"]\ntopologies = [\"mesh\"]\n",
            "z.suite",
        )
        .unwrap_err();
        assert!(err.message.contains("topology"), "{err}");
    }

    #[test]
    fn errors_name_file_line_and_axis() {
        let text = "[scenario.x]\nworkloads = [\"netpipe:64\"]\nprotocols = [\"quic\"]\n";
        let err = Suite::parse_str(text, "bad.suite").unwrap_err();
        assert_eq!(err.file, "bad.suite");
        assert_eq!(err.line, 3);
        let shown = err.to_string();
        assert!(shown.starts_with("bad.suite:3:"), "{shown}");
        assert!(shown.contains("protocol"), "{shown}");
        assert!(shown.contains("`quic`"), "{shown}");
    }

    #[test]
    fn scenario_without_workloads_is_an_error_at_its_header() {
        let text = "\n[scenario.empty]\nprotocols = [\"native\"]\n";
        let err = Suite::parse_str(text, "e.suite").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("no workloads"), "{err}");
    }

    #[test]
    fn include_rejected_without_a_filesystem() {
        let text = "[suite]\ninclude = [\"other.suite\"]\n";
        let err = Suite::parse_str(text, "inc.suite").unwrap_err();
        assert!(err.message.contains("Suite::load"), "{err}");
    }

    #[test]
    fn render_parse_round_trips_the_cell_set() {
        let m = Matrix::new()
            .workloads([
                WorkloadSpec::NetPipe {
                    rounds: 20,
                    bytes: 64,
                },
                WorkloadSpec::Stencil {
                    n_ranks: 8,
                    iterations: 3,
                    face_bytes: 256,
                    compute_us: 10,
                    wildcard_recv: false,
                },
            ])
            .protocols([ProtocolSpec::Native, ProtocolSpec::hydee()])
            .clusters([ClusterStrategy::Blocks(2)])
            .checkpoint_policies([CheckpointPolicySpec::periodic(5)])
            .failure_models([FailureModelSpec::poisson(500, 7)]);
        let text = Suite::render("rt", &[("only".to_string(), m.clone())]);
        let suite = Suite::parse_str(&text, "rt.suite").unwrap();
        assert_eq!(suite.name, "rt");
        assert_eq!(suite.scenarios.len(), 1);
        assert_eq!(suite.scenarios[0].matrix.expand(), m.expand(), "{text}");
    }

    #[test]
    fn select_filters_and_rejects_unknown_names() {
        let suite = Suite::parse_str(BASIC, "basic.suite").unwrap();
        let only = suite.select(&["log".to_string()]).unwrap();
        assert_eq!(only.scenarios.len(), 1);
        assert!(only.cells().iter().all(|c| c.scenario == "log"));
        let err = suite.select(&["nope".to_string()]).unwrap_err();
        assert!(err.contains("nope") && err.contains("native"), "{err}");
    }
}
