//! The run engine: specs in, records out.
//!
//! [`Executor::run`] evaluates a batch of [`ScenarioSpec`]s, in parallel
//! by default (one spec per worker, rayon-style dynamic load balancing).
//! Two invariants carry the workspace's determinism guarantee up through
//! the orchestration layer:
//!
//! 1. **Per-spec determinism** — each spec resolves and simulates from
//!    scratch on its worker thread with no shared mutable state, so a
//!    spec's record is bit-for-bit identical no matter where or when it
//!    runs.
//! 2. **Deterministic output order** — records come back in spec order
//!    regardless of completion order (results land in their input slot).
//!
//! `tests/determinism.rs` locks both in by comparing a parallel run
//! against [`Executor::serial`].

use rayon::prelude::*;

use crate::cache::{CacheStats, RunCache};
use crate::progress::{ProgressSink, ProgressState};
use crate::record::RunRecord;
use crate::spec::ScenarioSpec;
use clustering::ClusteringStats;
use mps_sim::{Metrics, Recorder};
use protocols::RunRequest;

/// Runs scenario batches. Construct with [`Executor::new`] (parallel) or
/// [`Executor::serial`] (reference mode for determinism checks and
/// debugging).
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor {
    serial: bool,
}

impl Executor {
    /// Parallel executor: specs are distributed across all cores.
    pub fn new() -> Self {
        Executor { serial: false }
    }

    /// Serial reference executor: same records, one spec at a time.
    pub fn serial() -> Self {
        Executor { serial: true }
    }

    /// Evaluate one spec. Public so single-run callers (examples, tests)
    /// can skip batch plumbing.
    pub fn run_one(spec: &ScenarioSpec) -> RunRecord {
        Self::run_one_with_recorder(spec, None)
    }

    /// Evaluate one spec with an optional [`Recorder`] attached to the
    /// simulation (trace spans, time-series samples). Recorders are
    /// observers: the returned record is bit-for-bit identical with or
    /// without one (`tests/recorder_neutrality.rs` locks this in).
    pub fn run_one_with_recorder(
        spec: &ScenarioSpec,
        recorder: Option<Box<dyn Recorder>>,
    ) -> RunRecord {
        let app = spec.workload.build();
        let map = spec.clusters.resolve(&app);
        let stats = ClusteringStats::evaluate(&app, &map);
        let record = RunRecord {
            scenario: spec.label(),
            workload: spec.workload.name(),
            protocol: spec.protocol.name(),
            clusters: spec.clusters.name(),
            network: spec.network.name().into(),
            topology: spec.topology.name(),
            n_ranks: app.n_ranks(),
            n_clusters: map.n_clusters(),
            n_failures: spec.failure_model.scheduled_failures(),
            failure_model: spec.failure_model.name(),
            checkpoint_policy: spec.protocol.checkpoint_policy().name(),
            avg_rollback_pct: stats.avg_rollback_pct,
            static_logged_bytes: stats.logged_bytes,
            static_total_bytes: stats.total_bytes,
            static_logged_pct: stats.logged_pct(),
            program_resident_bytes: app.resident_bytes(),
            program_unrolled_bytes: app.unrolled_bytes(),
            completed: false,
            status: "static".into(),
            makespan_ps: 0,
            makespan_s: 0.0,
            digest: 0,
            trace_consistent: true,
            trace_violations: 0,
            rollback_rank_fraction: 0.0,
            lost_work_s: 0.0,
            recovery_s: 0.0,
            checkpoint_overhead_s: 0.0,
            waste_fraction: 0.0,
            metrics: Metrics::default(),
            shards: 1,
            barrier_rounds: 0,
            pair_lookahead: String::new(),
        };
        if !spec.simulate {
            return record;
        }
        // A fixed-schedule rank outside the workload would panic inside
        // the engine (worse, inside a rayon worker): surface it as an
        // incomplete record instead.
        if let Some(bad) = spec.failure_model.invalid_rank(app.n_ranks()) {
            return RunRecord {
                status: format!(
                    "invalid failure schedule: rank {bad} out of range (workload has {} ranks)",
                    app.n_ranks()
                ),
                ..record
            };
        }
        let factory = spec.protocol.to_factory();
        // Always attach the built topology — `Flat` included — so the
        // oracle path (flat topology == no topology, bit-for-bit) is
        // exercised by every sweep, not just by its unit tests.
        let mut cfg = spec.sim_config();
        cfg.topology = Some(std::sync::Arc::new(
            spec.topology
                .build(cfg.network.clone(), map.assignment().to_vec()),
        ));
        let mut req = RunRequest::new(app)
            .sim_config(cfg)
            .failure_model(spec.failure_model.build(&map))
            .clusters(map)
            .shards(spec.shards);
        if let Some(rec) = recorder {
            req = req.recorder(rec);
        }
        let report = factory.run(req);
        record.with_report(&report)
    }

    /// Evaluate `specs`, returning one record per spec **in spec order**.
    pub fn run(&self, specs: &[ScenarioSpec]) -> Vec<RunRecord> {
        if self.serial {
            specs.iter().map(Self::run_one).collect()
        } else {
            specs.par_iter().map(Self::run_one).collect()
        }
    }

    /// Like [`Executor::run`], but reports every cell start/completion
    /// through `sink` (see [`crate::progress`]). Progress is advisory:
    /// the records are identical to a plain [`Executor::run`].
    pub fn run_with_progress(
        &self,
        specs: &[ScenarioSpec],
        sink: &dyn ProgressSink,
    ) -> Vec<RunRecord> {
        let state = ProgressState::new(specs.len());
        let eval = |spec: &ScenarioSpec| {
            state.on_start(sink, &spec.label());
            let record = Self::run_one(spec);
            state.on_done(sink, &record);
            record
        };
        if self.serial {
            specs.iter().map(eval).collect()
        } else {
            specs.par_iter().map(eval).collect()
        }
    }

    /// Like [`Executor::run_with_progress`], but consults `cache` before
    /// simulating each cell: a hit returns the stored record (bit-for-bit
    /// the record the original simulation produced — determinism plus the
    /// [`RunCache`] contract make that sound), a miss simulates and
    /// remembers. Progress heartbeats still fire for every cell, so a hit
    /// shows up as an instant completion; records come back in spec
    /// order, exactly as [`Executor::run`]. Pass `sink = None` for a
    /// silent batch. Also returns the batch's hit/miss tally.
    pub fn run_cached(
        &self,
        specs: &[ScenarioSpec],
        cache: &dyn RunCache,
        sink: Option<&dyn ProgressSink>,
    ) -> (Vec<RunRecord>, CacheStats) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let state = ProgressState::new(specs.len());
        let hits = AtomicUsize::new(0);
        let eval = |spec: &ScenarioSpec| {
            if let Some(sink) = sink {
                state.on_start(sink, &spec.label());
            }
            let cached = cache.get_or_run(spec, &|| Self::run_one(spec));
            if cached.hit {
                hits.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(sink) = sink {
                state.on_done(sink, &cached.record);
            }
            cached.record
        };
        let records: Vec<RunRecord> = if self.serial {
            specs.iter().map(eval).collect()
        } else {
            specs.par_iter().map(eval).collect()
        };
        let hits = hits.into_inner();
        let stats = CacheStats {
            hits,
            misses: specs.len() - hits,
        };
        (records, stats)
    }

    /// [`Executor::run_one_with_recorder`] plus progress heartbeats for
    /// the one-cell batch, so `sweep --trace-out --progress-out` still
    /// feeds its progress sinks.
    pub fn run_one_with_recorder_and_progress(
        spec: &ScenarioSpec,
        recorder: Option<Box<dyn Recorder>>,
        sink: &dyn ProgressSink,
    ) -> RunRecord {
        let state = ProgressState::new(1);
        state.on_start(sink, &spec.label());
        let record = Self::run_one_with_recorder(spec, recorder);
        state.on_done(sink, &record);
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterStrategy, ProtocolSpec};
    use workloads::WorkloadSpec;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new(
            WorkloadSpec::NetPipe {
                rounds: 3,
                bytes: 256,
            },
            ProtocolSpec::hydee(),
            ClusterStrategy::PerRank,
        )
    }

    #[test]
    fn run_one_simulates_and_analyses() {
        let rec = Executor::run_one(&tiny_spec());
        assert!(rec.completed, "{}", rec.status);
        assert_eq!(rec.n_ranks, 2);
        assert_eq!(rec.n_clusters, 2);
        assert_eq!(rec.metrics.app_messages, 6);
        assert!(rec.makespan_ps > 0);
        // Per-rank clustering logs everything.
        assert_eq!(rec.static_logged_pct, 100.0);
        assert_eq!(rec.metrics.logged_bytes_cumulative, 6 * 256);
    }

    #[test]
    fn out_of_range_failure_rank_is_an_incomplete_record_not_a_panic() {
        let mut spec = tiny_spec();
        spec.failure_model =
            crate::spec::FailureModelSpec::Fixed(vec![crate::spec::FailureSpec::at_ms(
                1,
                vec![99],
            )]);
        let rec = Executor::run_one(&spec);
        assert!(!rec.completed);
        assert!(
            rec.status.contains("rank 99 out of range"),
            "{}",
            rec.status
        );
        assert_eq!(rec.metrics.events, 0, "simulation must not have started");
    }

    #[test]
    fn static_spec_skips_simulation() {
        let mut spec = tiny_spec();
        spec.simulate = false;
        let rec = Executor::run_one(&spec);
        assert_eq!(rec.status, "static");
        assert!(!rec.completed);
        assert_eq!(rec.metrics.events, 0);
        assert_eq!(rec.static_total_bytes, 6 * 256);
    }

    #[test]
    fn parallel_matches_serial_and_preserves_order() {
        let specs: Vec<ScenarioSpec> = (1..=8)
            .map(|i| {
                ScenarioSpec::new(
                    WorkloadSpec::NetPipe {
                        rounds: i,
                        bytes: 64 * i as u64,
                    },
                    ProtocolSpec::hydee(),
                    ClusterStrategy::PerRank,
                )
            })
            .collect();
        let serial = Executor::serial().run(&specs);
        let parallel = Executor::new().run(&specs);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                serde_json::to_string(s).unwrap(),
                serde_json::to_string(p).unwrap()
            );
        }
    }

    #[test]
    fn run_with_progress_reports_every_cell_and_matches_run() {
        let specs: Vec<ScenarioSpec> = (1..=4)
            .map(|i| {
                ScenarioSpec::new(
                    WorkloadSpec::NetPipe {
                        rounds: i,
                        bytes: 128,
                    },
                    ProtocolSpec::hydee(),
                    ClusterStrategy::PerRank,
                )
            })
            .collect();
        let sink = crate::progress::tests::CollectSink::default();
        // Serial so heartbeat ordering is deterministic for assertions;
        // the parallel path shares the same eval closure.
        let with = Executor::serial().run_with_progress(&specs, &sink);
        let plain = Executor::serial().run(&specs);
        for (a, b) in with.iter().zip(&plain) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
        let snaps = sink.snaps.lock().unwrap();
        assert_eq!(snaps.iter().filter(|s| s.phase == "start").count(), 4);
        assert_eq!(snaps.iter().filter(|s| s.phase == "done").count(), 4);
        let last = snaps.last().unwrap();
        assert_eq!(last.completed, 4);
        assert_eq!(last.running, 0);
        let total_events: u64 = plain.iter().map(|r| r.metrics.events).sum();
        assert_eq!(last.events, total_events);
    }

    #[test]
    fn attached_recorder_does_not_change_the_record() {
        let spec = tiny_spec();
        let plain = Executor::run_one(&spec);
        let traced = Executor::run_one_with_recorder(&spec, Some(Box::new(mps_sim::NoopRecorder)));
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&traced).unwrap()
        );
    }
}
