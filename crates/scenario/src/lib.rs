//! # scenario — declarative, parallel experiment orchestration
//!
//! Every result in the HydEE paper is a *sweep*: a cross-product of
//! workload × protocol × clustering × failure schedule, each point one
//! deterministic simulation. This crate turns that shape into a
//! first-class subsystem:
//!
//! * [`ScenarioSpec`] — one run as plain data: a named workload (from
//!   the [`workloads::registry`]), a [`ProtocolSpec`] (erased at run time
//!   through the object-safe [`protocols::ProtocolFactory`]), a
//!   [`ClusterStrategy`], a [`NetworkSpec`] and a failure schedule.
//! * [`Matrix`] — axis lists expanded into the full cross-product of
//!   specs in a deterministic order.
//! * [`Executor`] — evaluates spec batches across all cores while
//!   keeping per-spec results bit-for-bit deterministic and output
//!   ordering equal to spec ordering ([`Executor::serial`] is the
//!   reference implementation the golden test compares against).
//! * [`RunRecord`] + [`JsonlSink`]/[`CsvSink`]/[`MatrixSummary`] — typed
//!   result rows with file sinks and aggregation, replacing the ad-hoc
//!   row writers the bench binaries used to duplicate.
//! * [`progress`] — live batch heartbeats (cells completed/running,
//!   events per wall second, ETA) for `sweep --progress` and JSONL
//!   tailers, via [`Executor::run_with_progress`].
//! * [`Suite`] — whole experiments as checked-in files: named
//!   scenarios, `[defaults]` inheritance and `include` composition in a
//!   TOML-flavoured suite format (DESIGN.md §2.6) that compiles down to
//!   `Matrix`/`ScenarioSpec`, driven by `sweep --suite`.
//! * [`SpecAxis`] — the one trait over every axis's `name()`⇄`parse()`
//!   pair, with structured [`ParseError`] diagnostics (axis, token,
//!   expected forms) that suite files extend with file/line.
//! * [`cache`] — the content-address contract: every spec renders to a
//!   canonical versioned descriptor whose FNV-1a-128 digest
//!   ([`CacheKey`]) keys persisted [`RunRecord`]s, and
//!   [`Executor::run_cached`] consults a [`RunCache`] (implemented
//!   durably by `crates/sweep-server`) before simulating a cell.
//!
//! ```
//! use scenario::{ClusterStrategy, Executor, Matrix, ProtocolSpec};
//! use workloads::WorkloadSpec;
//!
//! let specs = Matrix::new()
//!     .workloads([WorkloadSpec::NetPipe { rounds: 2, bytes: 1024 }])
//!     .protocols([ProtocolSpec::Native, ProtocolSpec::hydee()])
//!     .clusters([ClusterStrategy::PerRank])
//!     .expand();
//! let records = Executor::new().run(&specs);
//! assert_eq!(records.len(), 2);
//! assert!(records.iter().all(|r| r.completed));
//! // Records come back in spec order: native first.
//! assert_eq!(records[0].protocol, "native");
//! ```

pub mod axis;
pub mod cache;
pub mod executor;
pub mod matrix;
pub mod progress;
pub mod record;
pub mod report;
pub mod spec;
pub mod suite;

pub use axis::{ParseError, SpecAxis};
pub use cache::{fnv1a128, CacheKey, CacheStats, CachedRun, RunCache, DESCRIPTOR_VERSION};
pub use executor::Executor;
pub use matrix::Matrix;
pub use progress::{HumanProgress, JsonlProgress, ProgressFanout, ProgressSink, ProgressSnapshot};
pub use record::{csv_escape, fold_digests, parse_csv, RunRecord};
pub use report::{
    default_results_dir, write_all, CsvSink, JsonlSink, MatrixSummary, Sink, SummaryCell, Table,
};
pub use spec::{
    CheckpointPolicySpec, ClusterStrategy, FailureModelSpec, FailureSpec, NetworkSpec,
    ProtocolSpec, ScenarioSpec, StorageSpec, TopologySpec, DEFAULT_IMAGE_BYTES,
    DEFAULT_MAX_FAILURES,
};
pub use suite::{Suite, SuiteCell, SuiteError, SuiteScenario};
