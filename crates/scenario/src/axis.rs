//! One trait over every sweepable axis.
//!
//! Each axis type (workload, protocol, clustering, network,
//! checkpoint policy, failure model, failure injection) carries a
//! hand-written `name()`⇄`parse()` pair whose round trip is pinned by
//! proptest. [`SpecAxis`] unifies those pairs behind one interface with
//! a structured [`ParseError`], so callers that parse axis values out of
//! text — the suite compiler, the sweep CLI — can be generic over the
//! axis and report *which* axis rejected *which* token with the accepted
//! forms attached, instead of bubbling a bare `String`.

use crate::spec::{
    CheckpointPolicySpec, ClusterStrategy, FailureModelSpec, FailureSpec, NetworkSpec,
    ProtocolSpec, TopologySpec,
};
use workloads::WorkloadSpec;

/// A structured axis-parse failure: which axis, which token, what the
/// axis accepts, and the specific complaint. `Display` renders all four,
/// so wrapping layers (suite files add file/line) never lose the axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Axis identifier (`workload`, `protocol`, ...).
    pub axis: &'static str,
    /// The offending input token, verbatim.
    pub token: String,
    /// Summary of the forms the axis accepts.
    pub expected: &'static str,
    /// The specific complaint from the axis parser.
    pub detail: String,
}

impl ParseError {
    pub fn new(axis: &'static str, token: &str, expected: &'static str, detail: String) -> Self {
        ParseError {
            axis,
            token: token.to_string(),
            expected,
            detail,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} `{}`: {} (expected {})",
            self.axis, self.token, self.detail, self.expected
        )
    }
}

impl std::error::Error for ParseError {}

/// The `name()`⇄`parse()` contract every matrix axis implements:
/// `parse(x.name()) == Ok(x)` for every value `x`, and names are
/// injective (two distinct values never share a name). Pinned per axis
/// by the round-trip proptests.
pub trait SpecAxis: Sized {
    /// Axis identifier used in diagnostics.
    const AXIS: &'static str;
    /// Human summary of the accepted textual forms.
    const EXPECTED: &'static str;
    /// Canonical textual form, accepted back by [`SpecAxis::parse`].
    fn name(&self) -> String;
    /// Inverse of [`SpecAxis::name`]; also accepts documented sugar
    /// spellings (e.g. `blocks:4` for `blocks4`).
    fn parse(s: &str) -> Result<Self, ParseError>;
}

/// Implements [`SpecAxis`] by delegating to the type's inherent
/// `name`/`parse` pair (whose errors are bare `String`s).
macro_rules! spec_axis {
    ($ty:ty, $axis:literal, $expected:literal) => {
        impl SpecAxis for $ty {
            const AXIS: &'static str = $axis;
            const EXPECTED: &'static str = $expected;

            fn name(&self) -> String {
                <$ty>::name(self).into()
            }

            fn parse(s: &str) -> Result<Self, ParseError> {
                <$ty>::parse(s).map_err(|detail| ParseError::new($axis, s, $expected, detail))
            }
        }
    };
}

spec_axis!(
    WorkloadSpec,
    "workload",
    "nas:<BT|CG|FT|LU|MG|SP>[:scale=<f>][:iters=<n>] | netpipe:<bytes>[:rounds=<n>] | \
     stencil:<ranks>x<iters>[:face=<bytes>][:compute_us=<us>][:wildcard] | \
     master_worker:<ranks>[:tasks=<n>]"
);
spec_axis!(
    ProtocolSpec,
    "protocol",
    "native | {hydee|coordinated|event-logged}[:ckpt<ms>ms | :<policy>][:img<bytes>][:pfs][:nogc]"
);
spec_axis!(
    ClusterStrategy,
    "clusters",
    "single | per-rank | blocks<k> | part<k>"
);
spec_axis!(NetworkSpec, "network", "mx | tcp");
spec_axis!(
    TopologySpec,
    "topology",
    "flat | two-level | fat-tree:<k> | dragonfly:<g>"
);
spec_axis!(
    CheckpointPolicySpec,
    "checkpoint-policy",
    "none | periodic:interval=<ms>[:first=<ms>][:stagger=<ms>] | \
     young-daly[:first=<ms>][:stagger=<ms>] | log-pressure:budget=<bytes>"
);
spec_axis!(
    FailureModelSpec,
    "failure-model",
    "none | fail@<t>us:r<rank>[+<rank>...][,...] | \
     {poisson|cluster|cascade}:mtbf=<ms>:seed=<n>[:max=<n>][:window=<us>][:follow=<pct>]"
);
spec_axis!(
    FailureSpec,
    "failure",
    "fail@<t>us:r<rank>[+<rank>...] | <t>{us|ms}:<ranks> | <ms>:<ranks>"
);

#[cfg(test)]
mod tests {
    use super::*;

    // Generic over the trait on purpose: this is the one consumer-side
    // guarantee the per-axis proptests can't express.
    fn round_trips<A: SpecAxis + PartialEq + std::fmt::Debug>(value: A) {
        let name = SpecAxis::name(&value);
        assert_eq!(A::parse(&name).unwrap(), value, "`{name}`");
    }

    #[test]
    fn every_axis_round_trips_through_the_trait() {
        round_trips(WorkloadSpec::NetPipe {
            rounds: 20,
            bytes: 4096,
        });
        round_trips(ProtocolSpec::hydee());
        round_trips(ClusterStrategy::Partitioned(16));
        round_trips(NetworkSpec::Tcp);
        round_trips(TopologySpec::FatTree { k: 4 });
        round_trips(CheckpointPolicySpec::periodic(40));
        round_trips(FailureModelSpec::poisson(500, 7));
        round_trips(FailureSpec::at_ms(195, vec![7]));
    }

    #[test]
    fn errors_carry_axis_token_and_expected_forms() {
        let err = <ProtocolSpec as SpecAxis>::parse("quic").unwrap_err();
        assert_eq!(err.axis, "protocol");
        assert_eq!(err.token, "quic");
        let shown = err.to_string();
        assert!(shown.contains("protocol"), "{shown}");
        assert!(shown.contains("`quic`"), "{shown}");
        assert!(shown.contains("hydee"), "{shown}");

        let err = <WorkloadSpec as SpecAxis>::parse("bogus:1").unwrap_err();
        assert_eq!(err.axis, "workload");
        assert!(err.to_string().contains("netpipe"), "{err}");
    }
}
