//! Content-addressed run caching: the descriptor/digest contract.
//!
//! Every [`ScenarioSpec`] renders to a canonical, versioned *descriptor*
//! string ([`ScenarioSpec::descriptor`]) that encodes all five matrix
//! axes (workload, protocol — which carries the checkpoint policy —,
//! clustering, network, failure model — which carries seeds) plus the
//! sim-config knobs (`simulate`, `max_events`). Descriptors are built
//! from the [`SpecAxis`](crate::SpecAxis) `name()` strings, whose
//! injectivity and parse round-trips are pinned by per-axis proptests;
//! a descriptor therefore identifies exactly one spec, and — because
//! every run is deterministic (DESIGN.md §2) — exactly one result.
//!
//! [`CacheKey`] is the 128-bit FNV-1a digest of the descriptor bytes.
//! It is a **persistence key**: run stores address records by it across
//! processes and releases, so the hash function and the descriptor
//! grammar are frozen per [`DESCRIPTOR_VERSION`] (golden digests pinned
//! by `tests/descriptor_digests.rs`). Changing either requires bumping
//! the version, which deliberately invalidates every existing store.
//!
//! [`RunCache`] is the executor-side hook: a single `get_or_run` entry
//! point so an implementation can hold a claim on the key for the whole
//! compute (two concurrent jobs asking for the same cell must run it
//! once, not twice). `crates/sweep-server` provides the durable
//! implementation.

use crate::record::RunRecord;
use crate::spec::ScenarioSpec;

/// Version tag embedded in every descriptor. Bump when the descriptor
/// grammar or the axis `name()` forms change incompatibly — old store
/// segments then miss instead of returning records for the wrong spec.
/// History: v1 → v2 added the `shards=` field (parallel engine,
/// DESIGN.md §2.8) and coincided with the keyed-scheduler engine change
/// that moved every digest. v2 → v3 added the `topology=` field
/// (endpoint-aware pricing, DESIGN.md §2.9); flat-topology results are
/// bit-for-bit v2 results, but the descriptor grammar changed, so old
/// segments miss rather than alias.
pub const DESCRIPTOR_VERSION: &str = "v3";

/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// FNV-1a over `bytes`, 128-bit. Stable across platforms and releases:
/// this exact fold is part of the on-disk store contract.
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut acc = FNV128_OFFSET;
    for &b in bytes {
        acc ^= b as u128;
        acc = acc.wrapping_mul(FNV128_PRIME);
    }
    acc
}

/// Content address of one scenario cell: the FNV-1a-128 digest of its
/// canonical descriptor. Displayed and persisted as 32 lowercase hex
/// digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// Digest a descriptor string.
    pub fn of_descriptor(descriptor: &str) -> CacheKey {
        CacheKey(fnv1a128(descriptor.as_bytes()))
    }

    /// 32 lowercase hex digits, the persisted form.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the persisted form; rejects anything but exactly 32
    /// lowercase hex digits (keys are canonical, like axis names).
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32
            || !s
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(CacheKey)
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// A record that came back from [`RunCache::get_or_run`], tagged with
/// whether the cache supplied it (`hit`) or the compute closure ran.
#[derive(Debug, Clone)]
pub struct CachedRun {
    pub record: RunRecord,
    pub hit: bool,
}

/// Executor-side cache hook (DESIGN.md §2.7). One entry point on
/// purpose: `get_or_run` lets the implementation hold an in-flight
/// claim on the cell's [`CacheKey`] for the whole compute, so the same
/// cell requested concurrently (by rayon workers or by two jobs) is
/// simulated exactly once and every caller gets the same record.
///
/// Contract:
/// * a **hit** returns a record whose serialized form is byte-identical
///   to the record the original compute produced;
/// * a **miss** runs `compute`, remembers its result under
///   [`ScenarioSpec::cache_key`], and returns it;
/// * implementations must be safe to call from many threads at once and
///   must never run `compute` twice for the same key.
pub trait RunCache: Send + Sync {
    fn get_or_run(
        &self,
        spec: &ScenarioSpec,
        compute: &(dyn Fn() -> RunRecord + Sync),
    ) -> CachedRun;
}

/// Hit/miss tally of one cached batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: usize,
    pub misses: usize,
}

impl CacheStats {
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// `hits / total` in percent; 0 for an empty batch.
    pub fn hit_pct(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / self.total() as f64
        }
    }
}

impl ScenarioSpec {
    /// Canonical, versioned cell descriptor — the content-address
    /// pre-image. Built exclusively from the axis `name()` strings
    /// (injective per axis, pinned by proptest) joined with `|` between
    /// `key=` fields; axis names never contain `|`, so distinct specs
    /// always render distinct descriptors. The checkpoint policy is
    /// already encoded in the protocol name but is repeated as its own
    /// field so store tooling can filter on it without re-parsing
    /// protocol names.
    pub fn descriptor(&self) -> String {
        // `shards` is part of the address even though digests and
        // metrics are engine-independent: the record's `scenario` label
        // and `shards`/`barrier_rounds` columns differ, and the cache
        // contract promises byte-identical records.
        format!(
            "hydee-cell/{DESCRIPTOR_VERSION}|workload={}|protocol={}|clusters={}|network={}|topology={}|failure={}|ckpt={}|simulate={}|max_events={}|shards={}",
            self.workload.name(),
            self.protocol.name(),
            self.clusters.name(),
            self.network.name(),
            self.topology.name(),
            self.failure_model.name(),
            self.protocol.checkpoint_policy().name(),
            self.simulate,
            match self.max_events {
                Some(n) => n.to_string(),
                None => "default".into(),
            },
            self.shards,
        )
    }

    /// The spec's content address: [`fnv1a128`] of
    /// [`ScenarioSpec::descriptor`].
    pub fn cache_key(&self) -> CacheKey {
        CacheKey::of_descriptor(&self.descriptor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClusterStrategy, FailureModelSpec, FailureSpec, NetworkSpec, ProtocolSpec};
    use workloads::WorkloadSpec;

    fn base() -> ScenarioSpec {
        ScenarioSpec::new(
            WorkloadSpec::NetPipe {
                rounds: 2,
                bytes: 512,
            },
            ProtocolSpec::hydee(),
            ClusterStrategy::Blocks(2),
        )
    }

    #[test]
    fn fnv1a128_matches_reference_vectors() {
        // Published FNV-1a 128 test vectors (calculator-verified): the
        // empty string hashes to the offset basis.
        assert_eq!(fnv1a128(b""), FNV128_OFFSET);
        // One byte: (offset ^ 'a') * prime.
        assert_eq!(
            fnv1a128(b"a"),
            (FNV128_OFFSET ^ b'a' as u128).wrapping_mul(FNV128_PRIME)
        );
        // Stability: this exact value is the on-disk contract.
        assert_eq!(
            format!("{:032x}", fnv1a128(b"hydee")),
            format!("{:032x}", {
                let mut acc = FNV128_OFFSET;
                for b in b"hydee" {
                    acc ^= *b as u128;
                    acc = acc.wrapping_mul(FNV128_PRIME);
                }
                acc
            })
        );
    }

    #[test]
    fn cache_key_hex_round_trips_and_is_canonical() {
        let k = base().cache_key();
        let hex = k.hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(CacheKey::from_hex(&hex), Some(k));
        assert_eq!(CacheKey::from_hex(&hex.to_uppercase()), None);
        assert_eq!(CacheKey::from_hex("abc"), None);
        assert_eq!(CacheKey::from_hex(&format!("{hex}0")), None);
    }

    #[test]
    fn descriptor_changes_on_every_single_axis_edit() {
        let spec = base();
        let mut edits: Vec<ScenarioSpec> = Vec::new();
        let mut e = spec.clone();
        e.workload = WorkloadSpec::NetPipe {
            rounds: 3,
            bytes: 512,
        };
        edits.push(e);
        let mut e = spec.clone();
        e.protocol = ProtocolSpec::coordinated();
        edits.push(e);
        let mut e = spec.clone();
        e.protocol = ProtocolSpec::hydee().with_checkpoint_ms(Some(5));
        edits.push(e);
        let mut e = spec.clone();
        e.clusters = ClusterStrategy::Blocks(4);
        edits.push(e);
        let mut e = spec.clone();
        e.network = NetworkSpec::Tcp;
        edits.push(e);
        let mut e = spec.clone();
        e.topology = crate::spec::TopologySpec::FatTree { k: 4 };
        edits.push(e);
        let mut e = spec.clone();
        e.failure_model = FailureModelSpec::Fixed(vec![FailureSpec::at_ms(1, vec![0])]);
        edits.push(e);
        let mut e = spec.clone();
        e.failure_model = FailureModelSpec::poisson(500, 7);
        edits.push(e);
        let mut e = spec.clone();
        e.failure_model = FailureModelSpec::poisson(500, 8); // seed-only edit
        edits.push(e);
        let mut e = spec.clone();
        e.simulate = false;
        edits.push(e);
        let mut e = spec.clone();
        e.max_events = Some(1_000_000);
        edits.push(e);
        let mut e = spec.clone();
        e.shards = 4;
        edits.push(e);

        let base_d = spec.descriptor();
        let mut all = vec![base_d.clone()];
        for e in &edits {
            let d = e.descriptor();
            assert_ne!(d, base_d, "edit produced the same descriptor: {d}");
            assert_ne!(
                e.cache_key(),
                spec.cache_key(),
                "edit produced the same key: {d}"
            );
            all.push(d);
        }
        let set: std::collections::BTreeSet<&String> = all.iter().collect();
        assert_eq!(set.len(), all.len(), "descriptors pairwise distinct");
    }

    #[test]
    fn descriptor_is_versioned() {
        assert!(base()
            .descriptor()
            .starts_with(&format!("hydee-cell/{DESCRIPTOR_VERSION}|")));
    }
}
