//! Record sinks and aggregation: JSONL and CSV files, fixed-width tables,
//! and per-(workload, protocol) summaries.
//!
//! This replaces the ad-hoc `write_row`/`reset_results` helpers the bench
//! binaries used to hand-roll: the results directory is threaded
//! explicitly (no process-global environment mutation), and every sink
//! truncates on creation so reruns stay clean.

use crate::record::RunRecord;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Default results directory: `$HYDEE_RESULTS_DIR` or `./results`. Read
/// once at startup by binaries and passed down explicitly — nothing in
/// this crate reads the environment after that.
pub fn default_results_dir() -> PathBuf {
    std::env::var("HYDEE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Something that accepts records one at a time.
pub trait Sink {
    fn write_record(&mut self, record: &RunRecord) -> io::Result<()>;
    /// Flush buffers; call once after the last record.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn create_in(dir: &Path, file_name: &str) -> io::Result<BufWriter<File>> {
    std::fs::create_dir_all(dir)?;
    Ok(BufWriter::new(File::create(dir.join(file_name))?))
}

/// One JSON object per line, `<name>.jsonl`, truncated on creation.
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    pub fn create(dir: &Path, name: &str) -> io::Result<Self> {
        Ok(JsonlSink {
            out: create_in(dir, &format!("{name}.jsonl"))?,
        })
    }

    /// Serialize any row type — the escape hatch for binaries writing
    /// derived (non-RunRecord) rows next to the raw records.
    pub fn write_row<T: Serialize>(&mut self, row: &T) -> io::Result<()> {
        let line = serde_json::to_string(row).map_err(io::Error::other)?;
        writeln!(self.out, "{line}")
    }
}

impl Sink for JsonlSink {
    fn write_record(&mut self, record: &RunRecord) -> io::Result<()> {
        self.write_row(record)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Flat CSV with a fixed header, `<name>.csv`, truncated on creation.
pub struct CsvSink {
    out: BufWriter<File>,
}

impl CsvSink {
    pub fn create(dir: &Path, name: &str) -> io::Result<Self> {
        let mut out = create_in(dir, &format!("{name}.csv"))?;
        writeln!(out, "{}", RunRecord::csv_header())?;
        Ok(CsvSink { out })
    }
}

impl Sink for CsvSink {
    fn write_record(&mut self, record: &RunRecord) -> io::Result<()> {
        writeln!(self.out, "{}", record.csv_row())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Write `records` through every sink, then flush them all.
pub fn write_all(records: &[RunRecord], sinks: &mut [&mut dyn Sink]) -> io::Result<()> {
    for sink in sinks.iter_mut() {
        for r in records {
            sink.write_record(r)?;
        }
        sink.finish()?;
    }
    Ok(())
}

/// Simple fixed-width table printer (previously `bench::Table`).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Render to a string (testable; `print` writes it to stdout).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&format!("| {} |\n", joined.join(" | ")));
        };
        line(&self.headers, &mut out);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Aggregate of one (workload, protocol) cell of a matrix.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SummaryCell {
    pub runs: usize,
    pub completed: usize,
    pub mean_makespan_s: f64,
    pub max_makespan_s: f64,
    pub mean_logged_pct: f64,
    pub total_rolled_back: u64,
}

/// Per-(workload, protocol) aggregation over a batch of records.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MatrixSummary {
    pub cells: BTreeMap<String, SummaryCell>,
    pub total_runs: usize,
    pub total_completed: usize,
    pub total_simulated_seconds: f64,
}

impl MatrixSummary {
    pub fn from_records(records: &[RunRecord]) -> Self {
        let mut cells: BTreeMap<String, (SummaryCell, f64)> = BTreeMap::new();
        let mut summary = MatrixSummary::default();
        for r in records {
            summary.total_runs += 1;
            summary.total_completed += r.completed as usize;
            summary.total_simulated_seconds += r.makespan_s;
            let key = format!("{}|{}", r.workload, r.protocol);
            let (cell, logged_acc) = cells.entry(key).or_default();
            cell.runs += 1;
            cell.completed += r.completed as usize;
            cell.mean_makespan_s += r.makespan_s; // divided below
            cell.max_makespan_s = cell.max_makespan_s.max(r.makespan_s);
            cell.total_rolled_back += r.metrics.ranks_rolled_back;
            let logged_pct = if r.metrics.app_bytes > 0 {
                100.0 * r.metrics.logged_bytes_cumulative as f64 / r.metrics.app_bytes as f64
            } else {
                r.static_logged_pct
            };
            *logged_acc += logged_pct;
        }
        summary.cells = cells
            .into_iter()
            .map(|(k, (mut cell, logged_acc))| {
                let n = cell.runs.max(1) as f64;
                cell.mean_makespan_s /= n;
                cell.mean_logged_pct = logged_acc / n;
                (k, cell)
            })
            .collect();
        summary
    }

    /// Render as a fixed-width table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(&[
            "workload",
            "protocol",
            "runs",
            "ok",
            "mean makespan (s)",
            "logged %",
            "rolled back",
        ]);
        for (key, cell) in &self.cells {
            let (workload, protocol) = key.split_once('|').unwrap_or((key.as_str(), ""));
            t.row(&[
                workload.to_string(),
                protocol.to_string(),
                cell.runs.to_string(),
                cell.completed.to_string(),
                format!("{:.4}", cell.mean_makespan_s),
                format!("{:.1}%", cell.mean_logged_pct),
                cell.total_rolled_back.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::spec::{ClusterStrategy, ProtocolSpec, ScenarioSpec};
    use workloads::WorkloadSpec;

    fn records() -> Vec<RunRecord> {
        let specs = vec![
            ScenarioSpec::new(
                WorkloadSpec::NetPipe {
                    rounds: 2,
                    bytes: 64,
                },
                ProtocolSpec::Native,
                ClusterStrategy::Single,
            ),
            ScenarioSpec::new(
                WorkloadSpec::NetPipe {
                    rounds: 2,
                    bytes: 64,
                },
                ProtocolSpec::hydee(),
                ClusterStrategy::PerRank,
            ),
        ];
        Executor::serial().run(&specs)
    }

    #[test]
    fn sinks_write_truncated_files() {
        let dir = std::env::temp_dir().join(format!("scenario-sink-{}", std::process::id()));
        let records = records();
        for _ in 0..2 {
            // Second pass must truncate, not append.
            let mut jsonl = JsonlSink::create(&dir, "t").unwrap();
            let mut csv = CsvSink::create(&dir, "t").unwrap();
            write_all(&records, &mut [&mut jsonl, &mut csv]).unwrap();
        }
        let jsonl = std::fs::read_to_string(dir.join("t.jsonl")).unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"protocol\":\"hydee\""), "{jsonl}");
        let csv = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(csv.lines().count(), 3); // header + 2 rows
        assert!(csv.starts_with("scenario,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summary_aggregates_per_cell() {
        let records = records();
        let s = MatrixSummary::from_records(&records);
        assert_eq!(s.total_runs, 2);
        assert_eq!(s.total_completed, 2);
        assert_eq!(s.cells.len(), 2);
        let hydee = s.cells.get("netpipe:64:rounds=2|hydee").unwrap();
        assert_eq!(hydee.runs, 1);
        assert!((hydee.mean_logged_pct - 100.0).abs() < 1e-9);
        let rendered = s.table().render();
        assert!(rendered.contains("netpipe:64"), "{rendered}");
    }

    #[test]
    fn table_renders_fixed_width() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("|   a | bbbb |"), "{r}");
        assert!(r.lines().count() == 4);
    }
}
