//! Filesystem-facing suite tests (ISSUE 7 satellite 4): `include`
//! composition, include-cycle detection, and a golden corpus of bad
//! suite files whose diagnostics must name the file, the line and — for
//! axis failures — the axis and offending token. The error text is the
//! UI of the DSL; these tests keep it from regressing into bare
//! `String` soup.

use scenario::{Suite, SuiteError};
use std::fs;
use std::path::PathBuf;

/// A scratch directory under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("suite_files_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn write(&self, name: &str, text: &str) -> PathBuf {
        let path = self.0.join(name);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).unwrap();
        }
        fs::write(&path, text).unwrap();
        path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn include_composes_scenarios_in_include_order_then_own() {
    let dir = Scratch::new("compose");
    dir.write(
        "base.suite",
        r#"
[defaults]
networks = ["tcp"]

[scenario.base_a]
workloads = ["netpipe:64"]

[scenario.base_b]
workloads = ["netpipe:128"]
"#,
    );
    // Includes resolve relative to the including file, also from a
    // subdirectory.
    dir.write(
        "sub/extra.suite",
        r#"
[suite]
include = ["../base.suite"]

[scenario.own]
workloads = ["netpipe:256"]
"#,
    );
    let top = dir.write(
        "top.suite",
        r#"
[suite]
name = "composed"
include = ["sub/extra.suite"]

[scenario.last]
workloads = ["netpipe:512"]
"#,
    );

    let suite = Suite::load(&top).unwrap();
    assert_eq!(suite.name, "composed");
    let names: Vec<&str> = suite.scenarios.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["base_a", "base_b", "own", "last"]);
    // The included file's [defaults] apply to its own scenarios only —
    // inheritance is per file, not across the composition.
    assert_eq!(suite.scenarios[0].matrix.networks.len(), 1);
    assert!(suite.scenarios[3].matrix.networks.is_empty());
    // 4 scenarios × 1 cell each.
    assert_eq!(suite.cells().len(), 4);
}

#[test]
fn include_cycles_report_the_full_chain() {
    let dir = Scratch::new("cycle");
    let a = dir.write(
        "a.suite",
        "[suite]\ninclude = [\"b.suite\"]\n\n[scenario.a]\nworkloads = [\"netpipe:1\"]\n",
    );
    dir.write(
        "b.suite",
        "[suite]\ninclude = [\"a.suite\"]\n\n[scenario.b]\nworkloads = [\"netpipe:2\"]\n",
    );

    let err = Suite::load(&a).unwrap_err();
    assert!(
        err.message.contains("include cycle"),
        "want a cycle diagnostic, got: {err}"
    );
    // The chain names every hop: a -> b -> a.
    assert!(
        err.message.contains("a.suite") && err.message.contains("b.suite"),
        "cycle chain must name the files involved, got: {err}"
    );
    // Self-include is the degenerate cycle.
    let selfy = dir.write(
        "self.suite",
        "[suite]\ninclude = [\"self.suite\"]\n\n[scenario.s]\nworkloads = [\"netpipe:1\"]\n",
    );
    let err = Suite::load(&selfy).unwrap_err();
    assert!(err.message.contains("include cycle"), "got: {err}");
}

#[test]
fn duplicate_scenarios_across_includes_are_rejected_at_the_include_line() {
    let dir = Scratch::new("dup");
    dir.write(
        "base.suite",
        "[scenario.shared]\nworkloads = [\"netpipe:1\"]\n",
    );
    let top = dir.write(
        "top.suite",
        "[suite]\ninclude = [\"base.suite\", \"base.suite\"]\n\n\
         [scenario.own]\nworkloads = [\"netpipe:2\"]\n",
    );
    let err = Suite::load(&top).unwrap_err();
    assert!(err.file.ends_with("top.suite"), "got file: {}", err.file);
    assert_eq!(err.line, 2, "the `include = [...]` line");
    assert!(
        err.message.contains("`shared`") && err.message.contains("more than once"),
        "got: {err}"
    );
}

#[test]
fn missing_files_name_the_path() {
    let dir = Scratch::new("missing");
    let top = dir.write(
        "top.suite",
        "[suite]\ninclude = [\"nope.suite\"]\n\n[scenario.s]\nworkloads = [\"netpipe:1\"]\n",
    );
    let err = Suite::load(&top).unwrap_err();
    assert!(err.message.contains("cannot read suite file"), "got: {err}");
    assert!(err.file.contains("nope.suite"), "got file: {}", err.file);
}

/// Golden corpus: one malformed suite per row, with the line the
/// diagnostic must carry and substrings it must contain. Axis failures
/// must surface the axis name, the offending token and the accepted
/// forms (the structured `ParseError` rendering).
#[test]
fn bad_suites_name_file_line_and_axis() {
    let corpus: &[(&str, &str, usize, &[&str])] = &[
        (
            "unknown_key",
            "[scenario.s]\nworkload = [\"netpipe:1\"]\n",
            2,
            &["unknown axis key `workload`", "workloads | protocols"],
        ),
        (
            "bad_workload_token",
            "[scenario.s]\nworkloads = [\"warpdrive:9\"]\n",
            2,
            &["workload", "`warpdrive:9`", "netpipe:<bytes>"],
        ),
        (
            "bad_protocol_token",
            "[scenario.s]\nworkloads = [\"netpipe:1\"]\nprotocols = [\"hydee:ckptXXms\"]\n",
            3,
            &["protocol", "`hydee:ckptXXms`", "native | {hydee"],
        ),
        (
            "bad_policy_token",
            "[scenario.s]\nworkloads = [\"netpipe:1\"]\n\
             checkpoint_policies = [\"periodic:interval=oops\"]\n",
            3,
            &["checkpoint-policy", "`periodic:interval=oops`"],
        ),
        (
            "bad_failure_token",
            "[scenario.s]\nworkloads = [\"netpipe:1\"]\nfailure_models = [\"poisson:mtbf=\"]\n",
            3,
            &["failure-model", "`poisson:mtbf=`"],
        ),
        (
            "bad_cluster_token",
            "[scenario.s]\nworkloads = [\"netpipe:1\"]\nclusters = [\"blobs4\"]\n",
            3,
            &["clusters", "`blobs4`", "single | per-rank"],
        ),
        (
            "unquoted_list_item",
            "[scenario.s]\nworkloads = [netpipe:1]\n",
            2,
            &["workloads", "list items must be quoted strings"],
        ),
        (
            "unterminated_list",
            "[scenario.s]\nworkloads = [\"netpipe:1\",\n",
            2,
            &["unterminated list", "workloads"],
        ),
        (
            "static_wrong_type",
            "[scenario.s]\nworkloads = [\"netpipe:1\"]\nstatic = \"yes\"\n",
            3,
            &["`static` must be true or false"],
        ),
        (
            "max_events_wrong_type",
            "[scenario.s]\nworkloads = [\"netpipe:1\"]\nmax_events = \"many\"\n",
            3,
            &["`max_events` must be an integer"],
        ),
        (
            "duplicate_axis_key",
            "[scenario.s]\nworkloads = [\"netpipe:1\"]\nworkloads = [\"netpipe:2\"]\n",
            3,
            &["duplicate `workloads`"],
        ),
        (
            "duplicate_scenario",
            "[scenario.s]\nworkloads = [\"netpipe:1\"]\n\n\
             [scenario.s]\nworkloads = [\"netpipe:2\"]\n",
            4,
            &["duplicate scenario `s`"],
        ),
        (
            "no_workloads",
            "[scenario.empty]\nprotocols = [\"native\"]\n",
            1,
            &["scenario `empty` has no workloads", "[defaults]"],
        ),
        (
            "key_outside_section",
            "workloads = [\"netpipe:1\"]\n",
            1,
            &["before any [section] header"],
        ),
        (
            "bad_section",
            "[scenarios.s]\nworkloads = [\"netpipe:1\"]\n",
            1,
            &["unknown section `[scenarios.s]`"],
        ),
        (
            "bad_scenario_name",
            "[scenario.two words]\nworkloads = [\"netpipe:1\"]\n",
            1,
            &["bad scenario name `two words`"],
        ),
        (
            "not_a_kv",
            "[scenario.s]\njust some words\n",
            2,
            &["expected `key = value`"],
        ),
        (
            "include_without_load",
            "[suite]\ninclude = [\"other.suite\"]\n\n[scenario.s]\nworkloads = [\"netpipe:1\"]\n",
            2,
            &["use Suite::load"],
        ),
    ];

    for (tag, text, line, needles) in corpus {
        let origin = format!("{tag}.suite");
        let err: SuiteError = Suite::parse_str(text, &origin)
            .map(|_| panic!("`{tag}` parsed but must fail:\n{text}"))
            .unwrap_err();
        assert_eq!(err.file, origin, "`{tag}`: wrong file in {err}");
        assert_eq!(err.line, *line, "`{tag}`: wrong line in {err}");
        let rendered = err.to_string();
        assert!(
            rendered.starts_with(&format!("{origin}:{line}: ")),
            "`{tag}`: Display must lead with file:line, got {rendered}"
        );
        for needle in *needles {
            assert!(
                rendered.contains(needle),
                "`{tag}`: diagnostic must contain `{needle}`, got: {rendered}"
            );
        }
    }
}
