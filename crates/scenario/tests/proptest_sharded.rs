//! Serial-vs-sharded equivalence at the record level (DESIGN.md §2.8):
//! for any scenario — across protocol families, failure models,
//! checkpoint policies, and shard counts — the sharded run's
//! `RunRecord` must serialize byte-identically to the serial run's once
//! the three fields that *name* the engine are normalized (the scenario
//! label embeds `/shardsN`, and the `shards`/`barrier_rounds` columns
//! report which engine ran). Everything the simulation computed —
//! digests, makespan, metrics, containment, waste — must not move.
//!
//! Failure-model scenarios exercise the documented fallback instead:
//! the factory runs them serially whatever `shards` asks for, so their
//! records are identical by construction and the `shards` column must
//! report 1.

use proptest::prelude::*;
use scenario::{
    CheckpointPolicySpec, ClusterStrategy, Executor, FailureModelSpec, FailureSpec, ProtocolSpec,
    RunRecord, ScenarioSpec,
};
use workloads::WorkloadSpec;

/// Shard counts the tentpole calls out: serial, a divisor, a ragged
/// count, and exactly `n_clusters` (the executor clamps anything above).
const SHARD_POINTS: [usize; 4] = [1, 2, 7, 8];

fn decode_protocol(variant: u8, policy: u8) -> ProtocolSpec {
    let checkpoint = match policy % 3 {
        0 => CheckpointPolicySpec::None,
        1 => CheckpointPolicySpec::periodic(2),
        _ => CheckpointPolicySpec::YoungDaly {
            first_ms: Some(1),
            stagger_ms: Some(0),
        },
    };
    match variant % 4 {
        0 => ProtocolSpec::Native,
        1 => ProtocolSpec::hydee().with_policy(checkpoint),
        2 => ProtocolSpec::event_logged().with_policy(checkpoint),
        _ => ProtocolSpec::coordinated().with_policy(checkpoint),
    }
}

fn decode_failures(variant: u8, seed: u64) -> FailureModelSpec {
    match variant % 3 {
        0 => FailureModelSpec::none(),
        1 => FailureModelSpec::Fixed(vec![FailureSpec::at_ms(2, vec![3])]),
        _ => FailureModelSpec::Poisson {
            mtbf_ms: 50,
            seed,
            max_failures: 2,
        },
    }
}

/// Blank out the fields that legitimately differ between the serial and
/// sharded runs of the same spec: the label (embeds `/shardsN`) and the
/// engine-identity columns. Everything else must match byte-for-byte.
fn normalized(mut record: RunRecord) -> String {
    record.scenario = String::new();
    record.shards = 0;
    record.barrier_rounds = 0;
    serde_json::to_string(&record).expect("record serializes")
}

proptest! {
    #[test]
    fn sharded_records_serialize_identically_to_serial(
        protocol_variant in any::<u8>(),
        policy_variant in any::<u8>(),
        failure_variant in any::<u8>(),
        failure_seed in any::<u64>(),
        iterations in 2usize..5,
    ) {
        let spec = {
            let mut s = ScenarioSpec::new(
                WorkloadSpec::Stencil {
                    n_ranks: 16,
                    iterations,
                    face_bytes: 2048,
                    compute_us: 40,
                    wildcard_recv: false,
                },
                decode_protocol(protocol_variant, policy_variant),
                ClusterStrategy::Blocks(8),
            );
            s.failure_model = decode_failures(failure_variant, failure_seed);
            s
        };
        let has_failures = spec.failure_model != FailureModelSpec::none();
        let serial = Executor::run_one(&spec);
        prop_assert_eq!(serial.shards, 1);
        prop_assert_eq!(serial.barrier_rounds, 0);
        let oracle = normalized(serial);
        for shards in SHARD_POINTS {
            let record = Executor::run_one(&spec.clone().with_shards(shards));
            // Failure runs take the documented serial fallback; clean
            // Coordinated runs are serial by design. Either way the
            // record must admit it in the `shards` column.
            if has_failures
                || matches!(spec.protocol, ProtocolSpec::Coordinated { .. })
                || shards == 1
            {
                prop_assert_eq!(record.shards, 1, "expected a serial run at shards={}", shards);
            } else {
                prop_assert!(
                    record.shards as usize > 1 && record.shards as usize <= 8,
                    "effective shard count {} out of range at shards={}",
                    record.shards,
                    shards
                );
                prop_assert!(record.barrier_rounds > 0, "sharded run ran no barriers");
            }
            prop_assert_eq!(
                &normalized(record),
                &oracle,
                "sharded record diverged at shards={}",
                shards
            );
        }
    }
}

/// `--shards` beyond the cluster count clamps (with a warning returned to
/// the caller) instead of erroring or over-sharding: requesting 64 shards
/// of an 8-cluster run must execute — and report — 8.
#[test]
fn oversharded_requests_clamp_to_the_cluster_count() {
    let spec = ScenarioSpec::new(
        WorkloadSpec::Stencil {
            n_ranks: 16,
            iterations: 3,
            face_bytes: 2048,
            compute_us: 40,
            wildcard_recv: false,
        },
        ProtocolSpec::Native,
        ClusterStrategy::Blocks(8),
    )
    .with_shards(64);
    let (effective, warning) = par_sim::effective_shards(64, 8);
    assert_eq!(effective, 8);
    let warning = warning.expect("clamping must warn");
    assert!(warning.contains("64") && warning.contains('8'), "{warning}");
    let record = Executor::run_one(&spec);
    assert_eq!(record.shards, 8, "oversharded run must clamp, not fail");
    assert!(record.completed);
}
