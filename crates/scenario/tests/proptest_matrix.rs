//! Property test: matrix expansion covers the exact cross-product of its
//! axes — right count, right nesting order, no duplicates — for arbitrary
//! axis contents.

use proptest::prelude::*;
use scenario::{ClusterStrategy, FailureSpec, Matrix, NetworkSpec, ProtocolSpec};
use workloads::WorkloadSpec;

fn arb_workloads() -> impl Strategy<Value = Vec<WorkloadSpec>> {
    prop::collection::vec(
        (1usize..5, 1u64..10_000)
            .prop_map(|(rounds, bytes)| WorkloadSpec::NetPipe { rounds, bytes }),
        1..4,
    )
    .prop_map(|mut ws| {
        // Distinct axis values (a real matrix never lists one point twice);
        // dedup by name to keep the uniqueness property meaningful.
        ws.sort_by_key(|w| w.name());
        ws.dedup_by_key(|w| w.name());
        ws
    })
}

fn arb_protocols() -> impl Strategy<Value = Vec<ProtocolSpec>> {
    (0usize..3).prop_map(|n| {
        [
            ProtocolSpec::Native,
            ProtocolSpec::hydee(),
            ProtocolSpec::event_logged(),
        ][..n]
            .to_vec()
    })
}

fn arb_clusters() -> impl Strategy<Value = Vec<ClusterStrategy>> {
    (0usize..3, 2usize..6).prop_map(|(n, k)| {
        [
            ClusterStrategy::PerRank,
            ClusterStrategy::Blocks(k),
            ClusterStrategy::Partitioned(k),
        ][..n]
            .to_vec()
    })
}

fn arb_schedules() -> impl Strategy<Value = Vec<Vec<FailureSpec>>> {
    prop::collection::vec(
        prop::collection::vec(
            (1u64..500, 0u32..8).prop_map(|(ms, r)| FailureSpec::at_ms(ms, vec![r])),
            0..2,
        ),
        0..3,
    )
    .prop_map(|mut ss| {
        ss.sort_by_key(|s| s.iter().map(|f| f.name()).collect::<Vec<_>>());
        ss.dedup();
        ss
    })
}

proptest! {
    #[test]
    fn expansion_is_exact_cross_product(
        workloads in arb_workloads(),
        protocols in arb_protocols(),
        clusters in arb_clusters(),
        use_tcp in any::<bool>(),
        ckpts in (0usize..3).prop_map(|n| [None, Some(40u64), Some(100)][..n].to_vec()),
        schedules in arb_schedules(),
    ) {
        let networks = if use_tcp {
            vec![NetworkSpec::Mx, NetworkSpec::Tcp]
        } else {
            vec![]
        };
        let matrix = Matrix::new()
            .workloads(workloads.clone())
            .protocols(protocols.clone())
            .clusters(clusters.clone())
            .networks(networks.clone())
            .checkpoint_ms(ckpts.clone())
            .failure_schedules(schedules.clone());
        let specs = matrix.expand();

        // Exact count: empty axes collapse to a singleton default, and
        // the checkpoint axis multiplies only checkpointing protocols
        // (the default protocol axis is [Native], which doesn't).
        let protocol_points: usize = if protocols.is_empty() {
            1
        } else {
            protocols
                .iter()
                .map(|p| {
                    if p.supports_checkpointing() && !ckpts.is_empty() {
                        ckpts.len()
                    } else {
                        1
                    }
                })
                .sum()
        };
        let expected = workloads.len()
            * protocol_points
            * clusters.len().max(1)
            * networks.len().max(1)
            * schedules.len().max(1);
        prop_assert_eq!(specs.len(), expected);
        prop_assert_eq!(matrix.len(), expected);

        // No duplicates: every spec is a distinct matrix point.
        for i in 0..specs.len() {
            for j in (i + 1)..specs.len() {
                prop_assert!(
                    specs[i] != specs[j],
                    "specs {i} and {j} identical: {:?}",
                    specs[i]
                );
            }
        }

        // Every axis combination is covered with the same multiplicity.
        for w in &workloads {
            for c in clusters.iter().copied().chain(
                clusters.is_empty().then_some(ClusterStrategy::Single),
            ) {
                for f in schedules.iter().chain(
                    schedules.is_empty().then_some(&Vec::new()),
                ) {
                    let model = scenario::FailureModelSpec::Fixed(f.clone());
                    let hits = specs.iter().filter(|s| {
                        s.workload == *w && s.clusters == c && s.failure_model == model
                    }).count();
                    prop_assert_eq!(hits, protocol_points * networks.len().max(1));
                }
            }
        }

        // Nesting order: workload index is non-decreasing, and within one
        // workload block the failure axis cycles fastest.
        let stride = expected / workloads.len();
        for (i, spec) in specs.iter().enumerate() {
            prop_assert_eq!(
                spec.workload.name(),
                workloads[i / stride].name(),
                "workload must be the slowest axis"
            );
        }
    }
}
