//! Golden pin of the cell-descriptor/cache-key contract.
//!
//! The run store (`crates/sweep-server`) addresses cached cells by
//! `ScenarioSpec::cache_key()` — FNV-1a-128 over the versioned
//! descriptor string. A store written by one release must hit in the
//! next, so both the descriptor *text* and the resulting digest are
//! frozen per `DESCRIPTOR_VERSION` in a checked-in golden file. If this
//! test fails, either (a) an axis `name()` or the descriptor grammar
//! changed by accident — fix the regression — or (b) the change is
//! intentional: bump `DESCRIPTOR_VERSION` in `scenario::cache` (old
//! stores then rebuild instead of silently mismatching) and regenerate
//! the file with `UPDATE_GOLDEN=1 cargo test -p scenario --test
//! descriptor_digests`.

use scenario::{
    CheckpointPolicySpec, ClusterStrategy, FailureModelSpec, NetworkSpec, ProtocolSpec,
    ScenarioSpec, StorageSpec, TopologySpec, DEFAULT_IMAGE_BYTES,
};
use workloads::WorkloadSpec;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/descriptor_digests.txt"
);

fn w(s: &str) -> WorkloadSpec {
    WorkloadSpec::parse(s).expect("workload parses")
}

fn fm(s: &str) -> FailureModelSpec {
    FailureModelSpec::parse(s).expect("failure model parses")
}

/// Representative cells covering every axis of the descriptor: all
/// protocol kinds, checkpoint policies, storage backends, cluster
/// strategies, networks, fixed + stochastic failure models, the static
/// path and the `max_events` override.
fn corpus() -> Vec<ScenarioSpec> {
    let base = || {
        ScenarioSpec::new(
            w("netpipe:1024"),
            ProtocolSpec::Native,
            ClusterStrategy::Single,
        )
    };
    let mut specs = vec![
        base(),
        ScenarioSpec::new(
            w("netpipe:1024"),
            ProtocolSpec::hydee(),
            ClusterStrategy::PerRank,
        ),
        ScenarioSpec::new(
            w("nas:CG:scale=0.015625"),
            ProtocolSpec::hydee(),
            ClusterStrategy::Partitioned(16),
        ),
        ScenarioSpec::new(
            w("stencil:16x10:face=256:compute_us=10"),
            ProtocolSpec::hydee().with_checkpoint_ms(Some(100)),
            ClusterStrategy::Blocks(4),
        ),
        ScenarioSpec::new(
            w("master_worker:8:tasks=4"),
            ProtocolSpec::hydee().with_policy(CheckpointPolicySpec::YoungDaly {
                first_ms: Some(2),
                stagger_ms: None,
            }),
            ClusterStrategy::Single,
        ),
        ScenarioSpec::new(
            w("netpipe:1024"),
            ProtocolSpec::hydee().with_policy(CheckpointPolicySpec::LogPressure {
                budget_bytes: 1 << 20,
            }),
            ClusterStrategy::Single,
        ),
        ScenarioSpec::new(
            w("netpipe:1024"),
            ProtocolSpec::Hydee {
                checkpoint: CheckpointPolicySpec::None,
                image_bytes: DEFAULT_IMAGE_BYTES,
                storage: StorageSpec::ParallelFs,
                gc: false,
            },
            ClusterStrategy::Single,
        ),
        ScenarioSpec::new(
            w("netpipe:1024"),
            ProtocolSpec::coordinated().with_checkpoint_ms(Some(5)),
            ClusterStrategy::Single,
        ),
        ScenarioSpec::new(
            w("netpipe:1024"),
            ProtocolSpec::event_logged(),
            ClusterStrategy::Single,
        ),
    ];
    // Network axis.
    let mut tcp = base();
    tcp.network = NetworkSpec::Tcp;
    specs.push(tcp);
    // Topology axis (v3): every non-flat kind participates in the key.
    for topology in [
        TopologySpec::TwoLevel,
        TopologySpec::FatTree { k: 4 },
        TopologySpec::Dragonfly { g: 2 },
    ] {
        let mut s = base();
        s.clusters = ClusterStrategy::Blocks(4);
        s.topology = topology;
        specs.push(s);
    }
    // Failure-model axis: fixed schedule and all three stochastic kinds.
    for model in [
        "fail@195ms:r7",
        "fail@20000us:r3+4,fail@40000us:r5",
        "poisson:mtbf=500:seed=7",
        "cluster:mtbf=500:seed=7:max=3",
        "cascade:mtbf=500:seed=7:window=1000:follow=50",
    ] {
        let mut s = base();
        s.failure_model = fm(model);
        specs.push(s);
    }
    // Static-analysis cell (Table I path).
    let mut stat = base();
    stat.simulate = false;
    specs.push(stat);
    // Engine event-limit override participates in the key.
    let mut capped = base();
    capped.max_events = Some(123_456_789);
    specs.push(capped);
    specs
}

fn render() -> String {
    let mut out = String::from(
        "# Golden descriptor digests — regenerate with UPDATE_GOLDEN=1 only\n\
         # on an intentional DESCRIPTOR_VERSION bump (see descriptor_digests.rs).\n\
         # <cache-key hex> <descriptor>\n",
    );
    for spec in corpus() {
        out.push_str(&format!(
            "{} {}\n",
            spec.cache_key().hex(),
            spec.descriptor()
        ));
    }
    out
}

#[test]
fn descriptors_and_digests_match_golden_file() {
    let expected = render();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &expected).expect("write golden file");
        return;
    }
    let actual = std::fs::read_to_string(GOLDEN).expect(
        "golden file missing — run UPDATE_GOLDEN=1 cargo test -p scenario \
         --test descriptor_digests",
    );
    assert_eq!(
        actual, expected,
        "descriptor/digest drift: this breaks every existing run store \
         (see the module docs for how to proceed)"
    );
}

#[test]
fn corpus_keys_are_pairwise_distinct() {
    let specs = corpus();
    let keys: std::collections::BTreeSet<String> =
        specs.iter().map(|s| s.cache_key().hex()).collect();
    assert_eq!(keys.len(), specs.len(), "cache-key collision in corpus");
    let descriptors: std::collections::BTreeSet<String> =
        specs.iter().map(|s| s.descriptor()).collect();
    assert_eq!(descriptors.len(), specs.len());
}
