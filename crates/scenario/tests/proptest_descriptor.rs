//! Property tests for the cache-key contract (ISSUE 8 satellite): the
//! cell descriptor must be *injective* — two different `ScenarioSpec`s
//! never share a descriptor, and editing any single axis always changes
//! both the descriptor and the FNV-1a-128 cache key. The run store
//! addresses cells exclusively by this key, so a collision here would
//! silently serve one cell's records for another.

use proptest::prelude::*;
use scenario::{
    CheckpointPolicySpec, ClusterStrategy, FailureModelSpec, NetworkSpec, ProtocolSpec,
    ScenarioSpec, StorageSpec, DEFAULT_IMAGE_BYTES,
};
use workloads::WorkloadSpec;

/// Largest ms value the policy grammar accepts (ps must fit in u64).
const MAX_MS: u64 = u64::MAX / 1_000_000_000;

/// Decode one arbitrary spec from raw draws (the vendored proptest has
/// no `prop_oneof`; this is the repo's established idiom). Every one of
/// the five spec axes — workload, protocol, clusters, network, failure
/// model — plus `simulate` and `max_events` varies independently.
fn decode_spec(a: u64, b: u64, c: u64) -> ScenarioSpec {
    let workload = match a % 3 {
        0 => WorkloadSpec::NetPipe {
            rounds: 1 + (b % 8) as usize,
            bytes: 64 + (c % 4096),
        },
        1 => WorkloadSpec::parse(&format!(
            "stencil:{}x{}:face=256:compute_us=10",
            2 + b % 16,
            1 + c % 40
        ))
        .expect("stencil parses"),
        _ => WorkloadSpec::parse(&format!("master_worker:{}:tasks={}", 2 + b % 8, 1 + c % 8))
            .expect("master_worker parses"),
    };
    let policy = match b % 4 {
        0 => CheckpointPolicySpec::None,
        1 => CheckpointPolicySpec::Periodic {
            interval_ms: 1 + c % MAX_MS,
            first_ms: (c & 1 == 1).then_some(b % MAX_MS),
            stagger_ms: None,
        },
        2 => CheckpointPolicySpec::YoungDaly {
            first_ms: None,
            stagger_ms: (b & 2 == 2).then_some(c % MAX_MS),
        },
        _ => CheckpointPolicySpec::LogPressure {
            budget_bytes: 1 + a % (u64::MAX - 1),
        },
    };
    let storage = if c & 1 == 1 {
        StorageSpec::ParallelFs
    } else {
        StorageSpec::Default
    };
    let image_bytes = DEFAULT_IMAGE_BYTES + (a % 3) * 4096;
    let protocol = match (a >> 8) % 4 {
        0 => ProtocolSpec::Native,
        1 => ProtocolSpec::Hydee {
            checkpoint: policy,
            image_bytes,
            storage,
            gc: b & 4 == 4,
        },
        2 => ProtocolSpec::Coordinated {
            checkpoint: policy,
            image_bytes,
            storage,
        },
        _ => ProtocolSpec::EventLogged {
            checkpoint: policy,
            image_bytes,
            storage,
        },
    };
    let clusters = match (b >> 8) % 4 {
        0 => ClusterStrategy::Single,
        1 => ClusterStrategy::PerRank,
        2 => ClusterStrategy::Blocks(1 + (c % 16) as usize),
        _ => ClusterStrategy::Partitioned(1 + (a % 16) as usize),
    };
    let network = if a & 1 == 1 {
        NetworkSpec::Tcp
    } else {
        NetworkSpec::Mx
    };
    let failure_model = match (c >> 8) % 5 {
        0 => FailureModelSpec::none(),
        1 => FailureModelSpec::parse(&format!("fail@{}us:r{}", 1 + a % 100_000, b % 8))
            .expect("fixed schedule parses"),
        2 => FailureModelSpec::poisson(1 + a % 10_000, b),
        3 => FailureModelSpec::correlated(1 + b % 10_000, c),
        _ => FailureModelSpec::cascade(1 + c % 10_000, a, 1 + b % 10_000, (c % 101) as u8),
    };
    let mut spec = ScenarioSpec::new(workload, protocol, clusters);
    spec.network = network;
    spec.failure_model = failure_model;
    spec.simulate = (a ^ b) & 1 == 0;
    spec.max_events = (b & 8 == 8).then_some(1 + c % u64::MAX);
    spec
}

proptest! {
    #[test]
    fn descriptors_are_injective_across_random_pairs(
        a1 in any::<u64>(), b1 in any::<u64>(), c1 in any::<u64>(),
        a2 in any::<u64>(), b2 in any::<u64>(), c2 in any::<u64>(),
    ) {
        let s1 = decode_spec(a1, b1, c1);
        let s2 = decode_spec(a2, b2, c2);
        if s1 == s2 {
            prop_assert_eq!(s1.descriptor(), s2.descriptor());
            prop_assert_eq!(s1.cache_key(), s2.cache_key());
        } else {
            prop_assert_ne!(
                s1.descriptor(), s2.descriptor(),
                "distinct specs share a descriptor"
            );
        }
    }

    #[test]
    fn editing_any_single_axis_changes_the_key(
        a in any::<u64>(), b in any::<u64>(), c in any::<u64>(),
    ) {
        let base = decode_spec(a, b, c);
        let mut edits: Vec<(&str, ScenarioSpec)> = Vec::new();
        // One guaranteed-different value per axis.
        let mut e = base.clone();
        e.workload = match &base.workload {
            WorkloadSpec::NetPipe { rounds, bytes } => WorkloadSpec::NetPipe {
                rounds: *rounds,
                bytes: bytes + 1,
            },
            _ => WorkloadSpec::NetPipe { rounds: 1, bytes: 64 },
        };
        edits.push(("workload", e));
        let mut e = base.clone();
        e.protocol = match &base.protocol {
            ProtocolSpec::Native => ProtocolSpec::hydee(),
            _ => ProtocolSpec::Native,
        };
        edits.push(("protocol", e));
        let mut e = base.clone();
        e.clusters = match base.clusters {
            ClusterStrategy::Blocks(k) => ClusterStrategy::Blocks(k + 1),
            _ => ClusterStrategy::Blocks(3),
        };
        edits.push(("clusters", e));
        let mut e = base.clone();
        e.network = match base.network {
            NetworkSpec::Mx => NetworkSpec::Tcp,
            NetworkSpec::Tcp => NetworkSpec::Mx,
        };
        edits.push(("network", e));
        let mut e = base.clone();
        e.failure_model = match &base.failure_model {
            FailureModelSpec::Poisson { mtbf_ms, seed, .. } => {
                // Seed-only edits must re-key (stochastic replica axis).
                FailureModelSpec::poisson(*mtbf_ms, seed.wrapping_add(1))
            }
            _ => FailureModelSpec::poisson(500, 7),
        };
        edits.push(("failure", e));
        let mut e = base.clone();
        e.simulate = !base.simulate;
        edits.push(("simulate", e));
        let mut e = base.clone();
        e.max_events = match base.max_events {
            Some(n) => Some(n.wrapping_add(1).max(1)),
            None => Some(42),
        };
        edits.push(("max_events", e));

        for (axis, edited) in &edits {
            prop_assert_ne!(edited, &base, "{} edit did not change the spec", axis);
            prop_assert_ne!(
                edited.descriptor(), base.descriptor(),
                "{} edit left the descriptor unchanged", axis
            );
            prop_assert_ne!(
                edited.cache_key(), base.cache_key(),
                "{} edit left the cache key unchanged", axis
            );
        }
        // And the edited descriptors are pairwise distinct from each
        // other — one edited axis can't masquerade as another.
        let all: std::collections::BTreeSet<String> =
            edits.iter().map(|(_, e)| e.descriptor()).collect();
        prop_assert_eq!(all.len(), edits.len());
    }
}
