//! Round-trip property tests for the checkpoint-policy grammar (ISSUE 5
//! tentpole): `name()` and `parse` must be true inverses, and names must
//! be injective — the `sweep` CLI, the matrix axis and the `RunRecord`
//! `checkpoint_policy` column all address policies exclusively by these
//! strings.

use proptest::prelude::*;
use scenario::CheckpointPolicySpec;

/// Largest millisecond value whose picosecond conversion fits in u64 —
/// the domain `parse` accepts for `interval=`/`first=`.
const MAX_MS: u64 = u64::MAX / 1_000_000_000;

/// Deterministically decode one arbitrary policy from raw draws (the
/// vendored proptest stub has no `prop_oneof`).
fn decode_policy(variant: u8, a: u64, b: u64, with_first: bool) -> CheckpointPolicySpec {
    let interval_ms = 1 + a % MAX_MS;
    let first_ms = with_first.then_some(b % (MAX_MS + 1));
    // Derive the stagger from independent bits so all four
    // present/absent combinations are exercised.
    let stagger_ms = (a & 1 == 1).then_some(a.rotate_left(13) % (MAX_MS + 1));
    match variant % 3 {
        0 => CheckpointPolicySpec::Periodic {
            interval_ms,
            first_ms,
            stagger_ms,
        },
        1 => CheckpointPolicySpec::YoungDaly {
            first_ms,
            stagger_ms,
        },
        _ => CheckpointPolicySpec::LogPressure {
            budget_bytes: 1 + b % (u64::MAX - 1),
        },
    }
}

#[test]
fn overflowing_times_are_rejected() {
    assert!(CheckpointPolicySpec::parse(&format!("periodic:interval={MAX_MS}")).is_ok());
    assert!(CheckpointPolicySpec::parse(&format!("periodic:interval={}", MAX_MS + 1)).is_err());
    assert!(CheckpointPolicySpec::parse(&format!("young-daly:first={}", MAX_MS + 1)).is_err());
}

proptest! {
    #[test]
    fn policy_name_parse_round_trips(
        variant in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        with_first in any::<bool>(),
    ) {
        let policy = decode_policy(variant, a, b, with_first);
        let name = policy.name();
        prop_assert_eq!(policy.to_string(), name.clone());
        let reparsed = CheckpointPolicySpec::parse(&name);
        prop_assert!(reparsed.is_ok(), "`{name}` failed to reparse: {:?}", reparsed);
        prop_assert_eq!(reparsed.unwrap(), policy, "`{name}` round-tripped differently");
    }

    #[test]
    fn trailing_garbage_never_parses(
        variant in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        with_first in any::<bool>(),
    ) {
        // Strict grammar (ISSUE 7 satellite): appending junk to any
        // valid policy name must be a parse error, not ignored.
        let name = decode_policy(variant, a, b, with_first).name();
        for mangled in [
            format!("{name}:zzz"),
            format!("{name}:"),
            format!("{name} x"),
            format!("{name}:interval=1:interval=2"),
        ] {
            prop_assert!(
                CheckpointPolicySpec::parse(&mangled).is_err(),
                "`{mangled}` parsed but must be rejected"
            );
        }
    }

    #[test]
    fn policy_names_are_injective_across_random_pairs(
        v1 in any::<u8>(), a1 in any::<u64>(), b1 in any::<u64>(), f1 in any::<bool>(),
        v2 in any::<u8>(), a2 in any::<u64>(), b2 in any::<u64>(), f2 in any::<bool>(),
    ) {
        let p1 = decode_policy(v1, a1, b1, f1);
        let p2 = decode_policy(v2, a2, b2, f2);
        if p1 != p2 {
            prop_assert_ne!(p1.name(), p2.name());
        } else {
            prop_assert_eq!(p1.name(), p2.name());
        }
    }

    #[test]
    fn protocol_names_stay_injective_under_policies(
        v in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        with_first in any::<bool>(),
    ) {
        use scenario::ProtocolSpec;
        let policy = decode_policy(v, a, b, with_first);
        let with_policy = ProtocolSpec::hydee().with_policy(policy);
        // A protocol name embeds the policy: two specs differing only in
        // policy must never share a name.
        if policy != scenario::CheckpointPolicySpec::None {
            prop_assert_ne!(with_policy.name(), ProtocolSpec::hydee().name());
        }
        // The record column exposes the same canonical name the axis
        // parses.
        prop_assert_eq!(with_policy.checkpoint_policy(), policy);
    }
}
