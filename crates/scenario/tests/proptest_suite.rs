//! Round-trip property test for the suite DSL (ISSUE 7 satellite 4):
//! rendering a set of named matrices to suite text and re-parsing it must
//! reproduce the identical cell set — `Suite::render` and
//! `Suite::parse_str` are inverses up to formatting. Every axis value is
//! addressed by its canonical `name()` string in the file, so this also
//! transitively exercises all five axis grammars under composition.

use proptest::prelude::*;
use scenario::{
    CheckpointPolicySpec, ClusterStrategy, FailureModelSpec, FailureSpec, Matrix, NetworkSpec,
    ProtocolSpec, StorageSpec, Suite,
};
use workloads::{NasBench, WorkloadSpec};

/// Largest millisecond value whose picosecond conversion fits in u64 —
/// the domain the policy/time grammars accept.
const MAX_MS: u64 = u64::MAX / 1_000_000_000;

/// Deterministically decode one workload from raw draws (the vendored
/// proptest stub has no `prop_oneof`).
fn decode_workload(variant: u8, a: u64, b: u64) -> WorkloadSpec {
    match variant % 4 {
        0 => WorkloadSpec::NetPipe {
            // `rounds == 20` exercises the eliding short form.
            rounds: if a & 1 == 0 {
                20
            } else {
                1 + (a % 500) as usize
            },
            bytes: 1 + b % (64 << 20),
        },
        1 => WorkloadSpec::Nas {
            bench: NasBench::all()[(a % 6) as usize],
            // Exact binary fractions (and sometimes exactly 1.0, the
            // eliding default) so Display→parse is lossless by
            // construction, not just by f64 shortest-round-trip.
            scale: (1 + b % 2048) as f64 / 1024.0,
            iterations: (a & 2 == 0).then_some(1 + (b % 400) as usize),
        },
        2 => WorkloadSpec::Stencil {
            n_ranks: 1 + (a % 4096) as usize,
            iterations: 1 + (b % 2000) as usize,
            face_bytes: 1 + a.rotate_left(17) % (8 << 20),
            compute_us: b.rotate_left(29) % 100_000,
            wildcard_recv: a & 4 == 0,
        },
        _ => WorkloadSpec::MasterWorker {
            n_ranks: 2 + (a % 512) as usize,
            tasks_per_worker: 1 + (b % 100) as usize,
        },
    }
}

fn decode_policy(variant: u8, a: u64, b: u64) -> CheckpointPolicySpec {
    let first_ms = (a & 8 == 0).then_some(b % (MAX_MS + 1));
    let stagger_ms = (a & 16 == 0).then_some(a.rotate_left(13) % (MAX_MS + 1));
    match variant % 4 {
        0 => CheckpointPolicySpec::None,
        1 => CheckpointPolicySpec::Periodic {
            interval_ms: 1 + a % MAX_MS,
            first_ms,
            stagger_ms,
        },
        2 => CheckpointPolicySpec::YoungDaly {
            first_ms,
            stagger_ms,
        },
        _ => CheckpointPolicySpec::LogPressure {
            budget_bytes: 1 + b % (u64::MAX - 1),
        },
    }
}

fn decode_protocol(variant: u8, a: u64, b: u64) -> ProtocolSpec {
    let checkpoint = decode_policy(variant / 4, a.rotate_left(7), b.rotate_left(11));
    let image_bytes = if a & 32 == 0 {
        scenario::DEFAULT_IMAGE_BYTES // the name-eliding default
    } else {
        1 + b % (1 << 30)
    };
    let storage = if a & 64 == 0 {
        StorageSpec::Default
    } else {
        StorageSpec::ParallelFs
    };
    match variant % 4 {
        0 => ProtocolSpec::Native,
        1 => ProtocolSpec::Hydee {
            checkpoint,
            image_bytes,
            storage,
            gc: a & 128 == 0,
        },
        2 => ProtocolSpec::Coordinated {
            checkpoint,
            image_bytes,
            storage,
        },
        _ => ProtocolSpec::EventLogged {
            checkpoint,
            image_bytes,
            storage,
        },
    }
}

fn decode_clusters(variant: u8, a: u64) -> ClusterStrategy {
    match variant % 4 {
        0 => ClusterStrategy::Single,
        1 => ClusterStrategy::PerRank,
        2 => ClusterStrategy::Blocks(1 + (a % 64) as usize),
        _ => ClusterStrategy::Partitioned(1 + (a % 64) as usize),
    }
}

fn decode_model(variant: u8, a: u64, b: u64) -> FailureModelSpec {
    match variant % 3 {
        0 => FailureModelSpec::Fixed(
            (0..1 + a % 3)
                .map(|i| FailureSpec {
                    at_us: (b.rotate_left(5 * i as u32)) % (u64::MAX / 1_000_000 + 1),
                    ranks: vec![(a.rotate_left(i as u32) % 1024) as u32],
                })
                .collect(),
        ),
        1 => FailureModelSpec::Poisson {
            mtbf_ms: 1 + a % 1_000_000,
            seed: b,
            max_failures: scenario::DEFAULT_MAX_FAILURES,
        },
        _ => FailureModelSpec::none(),
    }
}

/// One scenario matrix from raw draws: every axis populated (or left to
/// its default) independently.
fn decode_matrix(seed: u64, salt: u64) -> Matrix {
    let d = |i: u64| seed.rotate_left(((salt + i) % 64) as u32) ^ (salt.wrapping_mul(i | 1));
    let mut m = Matrix::new();
    for i in 0..1 + d(0) % 3 {
        m.workloads
            .push(decode_workload(d(i + 1) as u8, d(i + 2), d(i + 3)));
    }
    for i in 0..d(4) % 3 {
        m.protocols
            .push(decode_protocol(d(i + 5) as u8, d(i + 6), d(i + 7)));
    }
    for i in 0..d(8) % 3 {
        m.clusters.push(decode_clusters(d(i + 9) as u8, d(i + 10)));
    }
    if d(11) & 1 == 0 {
        m.networks.push(NetworkSpec::Mx);
    }
    if d(11) & 2 == 0 {
        m.networks.push(NetworkSpec::Tcp);
    }
    for i in 0..d(12) % 3 {
        m.checkpoint_policies
            .push(decode_policy(d(i + 13) as u8, d(i + 14), d(i + 15)));
    }
    for i in 0..d(16) % 3 {
        m.failure_models
            .push(decode_model(d(i + 17) as u8, d(i + 18), d(i + 19)));
    }
    m.simulate = d(20) & 1 == 0;
    m.max_events = (d(21) & 1 == 0).then_some(d(22) % 1_000_000_000);
    m
}

proptest! {
    #[test]
    fn render_parse_round_trips_the_cell_set(
        seed in any::<u64>(),
        salt in any::<u64>(),
        n_scenarios in any::<u8>(),
    ) {
        let n = 1 + (n_scenarios % 3) as u64;
        let scenarios: Vec<(String, Matrix)> = (0..n)
            .map(|i| (format!("s{i}"), decode_matrix(seed, salt.wrapping_add(i * 997))))
            .collect();
        let text = Suite::render("round_trip", &scenarios);
        let suite = Suite::parse_str(&text, "render.suite");
        prop_assert!(suite.is_ok(), "rendered text failed to parse: {:?}\n---\n{text}", suite);
        let suite = suite.unwrap();
        prop_assert_eq!(&suite.name, "round_trip");
        prop_assert_eq!(suite.scenarios.len(), scenarios.len());
        for ((name, matrix), parsed) in scenarios.iter().zip(&suite.scenarios) {
            prop_assert_eq!(name, &parsed.name);
            // Identical cell sets: the compile contract is expansion
            // equality, not field-by-field Matrix equality (sugar fields
            // normalize at the builder boundary).
            let (want, got) = (matrix.expand(), parsed.matrix.expand());
            prop_assert_eq!(
                want.len(), got.len(),
                "scenario `{}` expanded to a different cell count\n---\n{}", name, text
            );
            for (w, g) in want.iter().zip(&got) {
                prop_assert_eq!(w, g, "scenario `{}` cell drifted\n---\n{}", name, text);
            }
        }
    }
}
