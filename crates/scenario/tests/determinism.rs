//! Golden determinism guarantee of the orchestration layer: a parallel
//! executor run produces records identical — in order *and* content — to
//! a serial run of the same matrix. This is what makes sweep outputs
//! diffable across machines and core counts.

use scenario::{
    CheckpointPolicySpec, ClusterStrategy, Executor, FailureModelSpec, FailureSpec, Matrix,
    NetworkSpec, ProtocolSpec, RunRecord,
};
use workloads::{NasBench, WorkloadSpec};

/// A small but diverse matrix: every protocol family, clustering both
/// ways, a failure schedule, two networks, and a static point.
fn diverse_specs() -> Vec<scenario::ScenarioSpec> {
    let mut specs = Matrix::new()
        .workloads([
            WorkloadSpec::NetPipe {
                rounds: 4,
                bytes: 2048,
            },
            WorkloadSpec::Stencil {
                n_ranks: 9,
                iterations: 4,
                face_bytes: 8 << 10,
                compute_us: 50,
                wildcard_recv: false,
            },
            WorkloadSpec::Nas {
                bench: NasBench::MG,
                scale: 1e-4,
                iterations: Some(2),
            },
        ])
        .protocols([
            ProtocolSpec::Native,
            ProtocolSpec::hydee(),
            ProtocolSpec::event_logged(),
        ])
        .clusters([ClusterStrategy::Blocks(3), ClusterStrategy::PerRank])
        .networks([NetworkSpec::Mx, NetworkSpec::Tcp])
        .expand();
    // A failure-recovery point (checkpointed HydEE, mid-run crash).
    let mut failure_spec = scenario::ScenarioSpec::new(
        WorkloadSpec::Stencil {
            n_ranks: 8,
            iterations: 30,
            face_bytes: 32 << 10,
            compute_us: 100,
            wildcard_recv: false,
        },
        ProtocolSpec::Hydee {
            checkpoint: CheckpointPolicySpec::periodic(2),
            image_bytes: 1 << 16,
            storage: scenario::StorageSpec::ParallelFs,
            gc: true,
        },
        ClusterStrategy::Blocks(4),
    );
    failure_spec.failure_model = scenario::FailureModelSpec::Fixed(vec![FailureSpec {
        at_us: 3_000,
        ranks: vec![5],
    }]);
    specs.push(failure_spec);
    // The checkpoint-policy axis under stochastic failures: every
    // policy family × two seeds, each point checkpointing and (mostly)
    // recovering mid-run.
    specs.extend(
        Matrix::new()
            .workloads([WorkloadSpec::Stencil {
                n_ranks: 9,
                iterations: 40,
                face_bytes: 16 << 10,
                compute_us: 100,
                wildcard_recv: false,
            }])
            .protocols([ProtocolSpec::Hydee {
                checkpoint: CheckpointPolicySpec::None,
                image_bytes: 1 << 16,
                storage: scenario::StorageSpec::ParallelFs,
                gc: true,
            }])
            .clusters([ClusterStrategy::Blocks(3)])
            .checkpoint_policies([
                CheckpointPolicySpec::Periodic {
                    interval_ms: 2,
                    first_ms: Some(1),
                    stagger_ms: None,
                },
                CheckpointPolicySpec::YoungDaly {
                    first_ms: Some(1),
                    stagger_ms: None,
                },
                CheckpointPolicySpec::LogPressure {
                    budget_bytes: 256 << 10,
                },
            ])
            .failure_models([
                FailureModelSpec::Poisson {
                    mtbf_ms: 40,
                    seed: 7,
                    max_failures: 2,
                },
                FailureModelSpec::Poisson {
                    mtbf_ms: 40,
                    seed: 8,
                    max_failures: 2,
                },
            ])
            .expand(),
    );
    // A static-analysis point.
    let mut static_spec = scenario::ScenarioSpec::new(
        WorkloadSpec::Nas {
            bench: NasBench::CG,
            scale: 1e-3,
            iterations: Some(2),
        },
        ProtocolSpec::hydee(),
        ClusterStrategy::Partitioned(4),
    );
    static_spec.simulate = false;
    specs.push(static_spec);
    specs
}

fn to_json(records: &[RunRecord]) -> Vec<String> {
    records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect()
}

#[test]
fn parallel_records_identical_to_serial_golden() {
    let specs = diverse_specs();
    let serial = Executor::serial().run(&specs);
    let parallel = Executor::new().run(&specs);
    assert_eq!(serial.len(), specs.len());
    let serial_json = to_json(&serial);
    let parallel_json = to_json(&parallel);
    for i in 0..serial_json.len() {
        assert_eq!(
            serial_json[i],
            parallel_json[i],
            "record {i} ({}) diverged between serial and parallel execution",
            specs[i].label()
        );
    }
    // Order is spec order, not completion order.
    for (spec, rec) in specs.iter().zip(&serial) {
        assert_eq!(spec.label(), rec.scenario);
    }
}

#[test]
fn parallel_is_stable_across_repeated_runs() {
    let specs = diverse_specs();
    let first = to_json(&Executor::new().run(&specs));
    let second = to_json(&Executor::new().run(&specs));
    assert_eq!(first, second);
}

#[test]
fn simulated_points_complete_with_clean_oracle() {
    let specs = diverse_specs();
    for rec in Executor::new().run(&specs) {
        if rec.status != "static" {
            assert!(rec.completed, "{}: {}", rec.scenario, rec.status);
            assert!(
                rec.trace_consistent,
                "{}: {} oracle violations",
                rec.scenario, rec.trace_violations
            );
        }
    }
}
