//! Round-trip property tests for the failure grammar (ISSUE 4
//! satellite 1): `Display`/`name()` and `parse` must be true inverses
//! for both single injections and whole failure models. The `sweep` CLI
//! and the scenario matrices address failure regimes exclusively by
//! these strings, so a formatting drift would silently orphan them —
//! these tests turn that into a hard failure.

use proptest::prelude::*;
use scenario::{FailureModelSpec, FailureSpec, DEFAULT_MAX_FAILURES};

/// Largest `at_us` whose picosecond conversion fits in u64 — the domain
/// `FailureSpec::parse` accepts (larger values are rejected, see
/// `overflowing_times_are_rejected`).
const MAX_AT_US: u64 = u64::MAX / 1_000_000;

/// Deterministically decode one arbitrary injection from raw draws
/// (the vendored proptest stub has no `prop_oneof`).
fn decode_failure(at_us: u64, rank_seed: u64, n_ranks: u8) -> FailureSpec {
    let at_us = at_us % (MAX_AT_US + 1);
    let n = 1 + (n_ranks % 6) as u64;
    // Distinct, ascending ranks derived from the seed.
    let mut ranks: Vec<u32> = (0..n)
        .map(|i| (rank_seed.rotate_left(7 * i as u32) % 4096) as u32 + 64 * i as u32)
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    FailureSpec { at_us, ranks }
}

fn decode_model(variant: u8, a: u64, b: u64, c: u64, d: u8, e: u8) -> FailureModelSpec {
    let mtbf_ms = 1 + a % 1_000_000;
    let seed = b;
    let max_failures = if d & 1 == 0 {
        DEFAULT_MAX_FAILURES // the name-eliding default
    } else {
        (c % 100_000) as u32
    };
    match variant % 4 {
        0 => FailureModelSpec::Fixed(
            (0..(d % 4) as u64)
                .map(|i| decode_failure(a.rotate_left(i as u32 * 11), b ^ i, e))
                .collect(),
        ),
        1 => FailureModelSpec::Poisson {
            mtbf_ms,
            seed,
            max_failures,
        },
        2 => FailureModelSpec::Correlated {
            mtbf_ms,
            seed,
            max_failures,
        },
        _ => FailureModelSpec::Cascade {
            mtbf_ms,
            seed,
            max_failures,
            window_us: 1 + c % 10_000_000,
            follow_pct: e % 101,
        },
    }
}

#[test]
fn overflowing_times_are_rejected() {
    // Times past the picosecond range must be parse errors, not values
    // that wrap when `to_event` converts to SimTime.
    assert!(FailureSpec::parse(&format!("fail@{}us:r0", MAX_AT_US)).is_ok());
    assert!(FailureSpec::parse(&format!("fail@{}us:r0", MAX_AT_US + 1)).is_err());
    assert!(
        FailureSpec::parse("99999999999999999:0").is_err(),
        "legacy ms form"
    );
    assert!(
        FailureModelSpec::parse("cascade:mtbf=40:seed=1:follow=250").is_err(),
        "out-of-range follow percentage must error, not clamp"
    );
}

proptest! {
    #[test]
    fn failure_spec_display_parse_round_trips(
        at_us in any::<u64>(),
        rank_seed in any::<u64>(),
        n_ranks in any::<u8>(),
    ) {
        let spec = decode_failure(at_us, rank_seed, n_ranks);
        // Display and name() are the same canonical string.
        prop_assert_eq!(spec.to_string(), spec.name());
        let reparsed = FailureSpec::parse(&spec.name());
        prop_assert!(reparsed.is_ok(), "`{}` failed to reparse: {:?}", spec.name(), reparsed);
        prop_assert_eq!(reparsed.unwrap(), spec);
    }

    #[test]
    fn legacy_ms_form_parses_to_the_same_spec(
        at_ms in any::<u32>(),
        rank in any::<u16>(),
    ) {
        // The pre-redesign sweep grammar (`<ms>:<rank>`) must keep
        // working and agree with the canonical `us` form.
        let legacy = FailureSpec::parse(&format!("{at_ms}:{rank}")).unwrap();
        let canonical =
            FailureSpec::parse(&format!("fail@{}us:r{rank}", at_ms as u64 * 1000)).unwrap();
        prop_assert_eq!(&legacy, &canonical);
        prop_assert_eq!(legacy, FailureSpec::at_ms(at_ms as u64, vec![rank as u32]));
    }

    #[test]
    fn failure_model_name_parse_round_trips(
        variant in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        d in any::<u8>(),
        e in any::<u8>(),
    ) {
        let model = decode_model(variant, a, b, c, d, e);
        let name = model.name();
        let reparsed = FailureModelSpec::parse(&name);
        prop_assert!(reparsed.is_ok(), "`{name}` failed to reparse: {:?}", reparsed);
        prop_assert_eq!(reparsed.unwrap(), model, "`{name}` round-tripped differently");
    }

    #[test]
    fn trailing_garbage_never_parses(
        variant in any::<u8>(),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        d in any::<u8>(),
        e in any::<u8>(),
    ) {
        // Strict grammar (ISSUE 7 satellite): whatever valid name the
        // generator produces, appending junk must be a parse error —
        // never silently ignored.
        let model = decode_model(variant, a, b, c, d, e);
        let name = model.name();
        for mangled in [
            format!("{name}:zzz"),
            format!("{name}:"),
            format!("{name} trailing"),
            format!("{name},"),
        ] {
            prop_assert!(
                FailureModelSpec::parse(&mangled).is_err(),
                "`{mangled}` parsed but must be rejected"
            );
        }
        let spec = decode_failure(a, b, e);
        for mangled in [
            format!("{}x", spec.name()),
            format!("{}:r1:r2", spec.name()),
        ] {
            prop_assert!(
                FailureSpec::parse(&mangled).is_err(),
                "`{mangled}` parsed but must be rejected"
            );
        }
    }

    #[test]
    fn model_names_are_injective_across_random_pairs(
        v1 in any::<u8>(), a1 in any::<u64>(), b1 in any::<u64>(),
        c1 in any::<u64>(), d1 in any::<u8>(), e1 in any::<u8>(),
        v2 in any::<u8>(), a2 in any::<u64>(), b2 in any::<u64>(),
        c2 in any::<u64>(), d2 in any::<u8>(), e2 in any::<u8>(),
    ) {
        let m1 = decode_model(v1, a1, b1, c1, d1, e1);
        let m2 = decode_model(v2, a2, b2, c2, d2, e2);
        if m1 != m2 {
            prop_assert_ne!(m1.name(), m2.name());
        } else {
            prop_assert_eq!(m1.name(), m2.name());
        }
    }
}
