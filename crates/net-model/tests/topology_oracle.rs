//! The flat-topology oracle (ISSUE 10 satellite): `Flat` must price
//! every `(src, dst, size)` byte-identically to the legacy size-only
//! models, and the per-class `min_transit` matrix must generalise the
//! size-infimum sweep of `network.rs` to endpoint pairs. These two
//! properties are what let the topology refactor pin every pre-v7
//! BENCH digest: a flat run and a legacy run are the *same* run.

use net_model::{LinkClass, MxModel, NetworkModel, TcpModel, Topology, TopologyKind};
use proptest::prelude::*;
use std::sync::Arc;

/// A random rank → cluster assignment for `n_ranks` ranks over at most
/// `max_clusters` clusters (clusters may be empty / non-contiguous —
/// the topology must not care).
fn arb_assignment(n_ranks: usize, max_clusters: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..max_clusters, n_ranks)
}

fn base_models() -> Vec<Arc<dyn NetworkModel>> {
    vec![Arc::new(MxModel::default()), Arc::new(TcpModel::default())]
}

/// The size sweep from `network.rs::min_transit_is_the_infimum_over_sizes`,
/// crossing every MX plateau boundary and the rendezvous threshold.
fn size_sweep() -> Vec<u64> {
    (0..26)
        .map(|i| 1u64 << i)
        .chain([0, 32, 33, 1024, 1025, 4096, 4097, 32 * 1024 + 1])
        .collect()
}

proptest! {
    /// Flat prices every (src, dst, size) exactly as the size-only model.
    #[test]
    fn flat_is_a_byte_identical_oracle_of_the_legacy_models(
        assignment in arb_assignment(24, 8),
        pairs in prop::collection::vec((0u32..24, 0u32..24), 1..16),
        sizes in prop::collection::vec(0u64..(1 << 22), 1..8),
    ) {
        for base in base_models() {
            let topo = Topology::flat(base.clone(), assignment.clone());
            for &(s, d) in &pairs {
                for &w in &sizes {
                    prop_assert_eq!(
                        topo.cost(s, d, w),
                        base.cost(w),
                        "flat({}, {}, {}) diverged from {}", s, d, w, base.name()
                    );
                    prop_assert_eq!(topo.link_class(s, d), LinkClass::LOCAL);
                }
            }
            prop_assert_eq!(topo.n_classes(), 1);
        }
    }

    /// The pairwise generalisation of the lookahead infimum: for every
    /// topology, every rank pair and every size, the priced transit never
    /// undercuts the pair's class lower bound, and the matrix entry is
    /// attained at zero bytes.
    #[test]
    fn min_transit_matrix_is_the_pairwise_infimum(
        assignment in arb_assignment(16, 6),
        kind_sel in 0u8..4,
    ) {
        let kind = match kind_sel {
            0 => TopologyKind::Flat,
            1 => TopologyKind::TwoLevel,
            2 => TopologyKind::FatTree { k: 2 },
            _ => TopologyKind::Dragonfly { g: 2 },
        };
        for base in base_models() {
            let topo = Topology::new(kind, base.clone(), assignment.clone());
            let matrix = topo.min_transit_matrix();
            prop_assert_eq!(matrix.len(), topo.n_classes() as usize);
            for s in 0..16u32 {
                for d in 0..16u32 {
                    let class = topo.link_class(s, d);
                    let floor = matrix[class.0 as usize];
                    prop_assert_eq!(topo.cluster_min_transit(
                        topo.cluster_of(s), topo.cluster_of(d)), floor);
                    for &w in &size_sweep() {
                        prop_assert!(
                            topo.cost(s, d, w).transit >= floor,
                            "{:?} transit({}, {}, {}) undercuts class {} floor",
                            kind, s, d, w, class.0
                        );
                    }
                }
            }
            // Classes are ordered: farther links never price below nearer
            // ones, so the global infimum is the legacy scalar min_transit.
            for pair in matrix.windows(2) {
                prop_assert!(pair[0] <= pair[1]);
            }
            prop_assert_eq!(matrix[0], base.min_transit());
        }
    }
}
