//! Point-to-point network cost models.
//!
//! The decomposition follows LogGP: a send occupies the sender's CPU for
//! `sender` time (the MPI library call), the first byte reaches the receiver
//! after `transit`, and delivery occupies the receiver's CPU for `receiver`
//! time. The simulated runtime (`mps-sim`) turns these three numbers into
//! events; this crate only prices them.

use det_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The priced cost of moving one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MsgCost {
    /// CPU time consumed at the sender (library overhead, injection).
    pub sender: SimDuration,
    /// Time between the send completing at the sender and the message being
    /// deliverable at the receiver (wire latency + serialization).
    pub transit: SimDuration,
    /// CPU time consumed at the receiver on delivery (matching, copy-out).
    pub receiver: SimDuration,
}

impl MsgCost {
    /// End-to-end one-way time as seen by a ping-pong benchmark: from the
    /// moment the sender calls send to the moment the receiver returns from
    /// recv.
    pub fn one_way(&self) -> SimDuration {
        self.sender + self.transit + self.receiver
    }

    /// Arrival instant for a message sent at `t`.
    pub fn arrival(&self, t: SimTime) -> SimTime {
        t + self.sender + self.transit
    }
}

/// A deterministic network performance model.
pub trait NetworkModel: Send + Sync {
    /// Cost of a message whose on-the-wire size is `wire_bytes`.
    fn cost(&self, wire_bytes: u64) -> MsgCost;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// One-way latency for a `wire_bytes` message (ping-pong half
    /// round-trip, the quantity NetPIPE reports).
    fn latency(&self, wire_bytes: u64) -> SimDuration {
        self.cost(wire_bytes).one_way()
    }

    /// Lower bound on the transit component over all message sizes — the
    /// parallel engine's *lookahead* (DESIGN.md §2.8): an event executed
    /// at time `t` can make nothing arrive on another shard before
    /// `t + min_transit()`. Both built-in models price transit monotone in
    /// size (pinned by tests), so the zero-byte cost is the infimum; a
    /// model for which that does not hold must override this.
    fn min_transit(&self) -> SimDuration {
        self.cost(0).transit
    }

    /// Effective bandwidth in bytes/second for a `wire_bytes` message.
    ///
    /// Guard: a degenerate zero-latency model yields rate 0, never
    /// inf/NaN — the same treatment the telemetry samplers pin for
    /// their per-interval rates, so downstream ratio arithmetic
    /// (Metrics, reports) stays finite.
    fn bandwidth(&self, wire_bytes: u64) -> f64 {
        let t = self.latency(wire_bytes).as_secs_f64();
        if t > 0.0 {
            wire_bytes as f64 / t
        } else {
            0.0
        }
    }
}

/// Myrinet 10G / MX under MPICH2-nemesis, calibrated to the paper.
///
/// The paper states: "the native latency of MPICH2 is around 3.3 µs for
/// messages size 1 to 32 bytes and then jump to 4 µs", and the NIC is a
/// 10G-PCIE-8A-C Myri-10G (10 Gb/s = 1.25 GB/s). MX switches from eager to
/// rendezvous for large messages (32 KiB here), adding a handshake
/// round-trip but enabling zero-copy on both sides.
///
/// Small-message latency is a step function over *plateaus* — MX packs
/// messages into fixed-size packet slots, so latency is constant within a
/// slot and jumps between slots. Those plateaus are exactly what produces
/// the two overhead peaks of the paper's Figure 5 once HydEE's piggyback
/// bytes push a payload across a boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MxModel {
    /// `(max_wire_bytes_inclusive, base_latency)` plateau table, ascending.
    /// Messages above the last plateau use the last latency plus the
    /// per-byte gap for the bytes beyond the previous boundary.
    pub plateaus: Vec<(u64, SimDuration)>,
    /// Per-byte serialization time past the plateau region (1/bandwidth).
    pub gap_ps_per_byte: u64,
    /// Message size at which MX switches from eager to rendezvous.
    pub rendezvous_threshold: u64,
    /// Extra handshake cost paid by rendezvous transfers.
    pub rendezvous_handshake: SimDuration,
    /// Fraction (per mille) of the small-message latency charged to the
    /// sender CPU; the remainder less the receiver share is wire transit.
    pub sender_share_permille: u32,
    /// Fraction (per mille) charged to the receiver CPU.
    pub receiver_share_permille: u32,
}

impl Default for MxModel {
    fn default() -> Self {
        MxModel {
            plateaus: vec![
                (32, SimDuration::from_ns(3_300)),   // 1..=32 B : 3.3 us
                (1024, SimDuration::from_ns(4_000)), // 33..=1 KiB : 4.0 us
                (4096, SimDuration::from_ns(5_000)), // 1 KiB..4 KiB : 5.0 us
            ],
            // 1.25 GB/s => 0.8 ns/B => 800 ps/B
            gap_ps_per_byte: 800,
            rendezvous_threshold: 32 * 1024,
            rendezvous_handshake: SimDuration::from_ns(6_600), // one extra RTT of small msgs
            sender_share_permille: 250,
            receiver_share_permille: 250,
        }
    }
}

impl MxModel {
    /// Base one-way time before splitting into sender/transit/receiver.
    fn total(&self, wire_bytes: u64) -> SimDuration {
        let (last_boundary, last_latency) = *self
            .plateaus
            .last()
            .expect("MxModel requires at least one plateau");
        let mut t = if wire_bytes <= self.plateaus[0].0 {
            self.plateaus[0].1
        } else if let Some(&(_, lat)) = self
            .plateaus
            .iter()
            .find(|&&(bound, _)| wire_bytes <= bound)
        {
            lat
        } else {
            // Past the plateau table: last plateau latency + per-byte gap
            // for the overhang.
            last_latency + SimDuration::from_ps((wire_bytes - last_boundary) * self.gap_ps_per_byte)
        };
        if wire_bytes > self.rendezvous_threshold {
            t += self.rendezvous_handshake;
        }
        t
    }
}

impl NetworkModel for MxModel {
    fn cost(&self, wire_bytes: u64) -> MsgCost {
        let total = self.total(wire_bytes);
        let sender = SimDuration::from_ps(total.as_ps() * self.sender_share_permille as u64 / 1000);
        let receiver =
            SimDuration::from_ps(total.as_ps() * self.receiver_share_permille as u64 / 1000);
        let transit = total - sender - receiver;
        MsgCost {
            sender,
            transit,
            receiver,
        }
    }

    fn name(&self) -> &'static str {
        "myrinet-mx-10g"
    }
}

/// Memoized pricing front-end for a [`NetworkModel`] / [`Topology`].
///
/// A simulation run touches only a handful of distinct wire sizes, while
/// pricing happens once per message; the cache turns the per-message dyn
/// dispatch + plateau search into one deterministic hash probe
/// (DESIGN.md §2.1). Since the topology refactor the key is the pair
/// `(link_class, wire_bytes)` rather than the size alone: two endpoints
/// on different link classes price the same size differently, and a
/// size-only key would leak one class's price into the other. Caching
/// remains sound because both `cost()` and `class_cost()` are pure
/// functions of that pair. [`CostCache::price`] keys class 0 — the
/// base-model-verbatim class — so legacy size-only callers see exactly
/// the pre-topology behaviour.
///
/// [`Topology`]: crate::topology::Topology
#[derive(Default)]
pub struct CostCache {
    map: det_sim::FxHashMap<(u8, u64), MsgCost>,
}

impl CostCache {
    pub fn new() -> Self {
        CostCache::default()
    }

    /// Price `wire_bytes` on `model`, memoized under link class 0.
    #[inline]
    pub fn price(&mut self, model: &dyn NetworkModel, wire_bytes: u64) -> MsgCost {
        if let Some(&c) = self.map.get(&(0, wire_bytes)) {
            return c;
        }
        let c = model.cost(wire_bytes);
        self.map.insert((0, wire_bytes), c);
        c
    }

    /// Price `wire_bytes` on link class `class` of `topo`, memoized.
    ///
    /// Class 0 shares its cache line with [`CostCache::price`]: the
    /// topology's class 0 is its base model verbatim, so the entries
    /// are interchangeable by construction (callers must not mix two
    /// different base models through one cache).
    #[inline]
    pub fn price_class(
        &mut self,
        topo: &crate::topology::Topology,
        class: crate::topology::LinkClass,
        wire_bytes: u64,
    ) -> MsgCost {
        if let Some(&c) = self.map.get(&(class.0, wire_bytes)) {
            return c;
        }
        let c = topo.class_cost(class, wire_bytes);
        self.map.insert((class.0, wire_bytes), c);
        c
    }

    /// Number of distinct `(link_class, wire_bytes)` pairs priced so far.
    pub fn distinct_sizes(&self) -> usize {
        self.map.len()
    }
}

/// Plain TCP over the same 10G fabric: higher base latency (kernel stack),
/// same asymptotic bandwidth discounted by protocol overhead.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcpModel {
    pub base_latency: SimDuration,
    pub gap_ps_per_byte: u64,
    pub sender_overhead: SimDuration,
    pub receiver_overhead: SimDuration,
}

impl Default for TcpModel {
    fn default() -> Self {
        TcpModel {
            base_latency: SimDuration::from_us(25),
            gap_ps_per_byte: 900, // ~1.1 GB/s effective
            sender_overhead: SimDuration::from_us(2),
            receiver_overhead: SimDuration::from_us(2),
        }
    }
}

impl NetworkModel for TcpModel {
    fn cost(&self, wire_bytes: u64) -> MsgCost {
        MsgCost {
            sender: self.sender_overhead,
            transit: self.base_latency + SimDuration::from_ps(wire_bytes * self.gap_ps_per_byte),
            receiver: self.receiver_overhead,
        }
    }

    fn name(&self) -> &'static str {
        "tcp-10g"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mx_small_message_plateau() {
        let mx = MxModel::default();
        for size in [1, 8, 16, 32] {
            assert_eq!(mx.latency(size), SimDuration::from_ns(3_300), "size {size}");
        }
        for size in [33, 64, 512, 1024] {
            assert_eq!(mx.latency(size), SimDuration::from_ns(4_000), "size {size}");
        }
    }

    #[test]
    fn mx_plateau_jump_is_the_paper_jump() {
        // The 32->33 B jump is 3.3 -> 4.0 us, i.e. ~21%: the first Figure 5
        // peak once piggybacking pushes a <=32 B payload past the boundary.
        let mx = MxModel::default();
        let before = mx.latency(32).as_ns_f64();
        let after = mx.latency(33).as_ns_f64();
        let jump = (after - before) / before;
        assert!((0.15..0.30).contains(&jump), "jump={jump}");
    }

    #[test]
    fn mx_latency_monotone_in_size() {
        let mx = MxModel::default();
        let sizes: Vec<u64> = (0..24).map(|i| 1u64 << i).collect();
        for w in sizes.windows(2) {
            assert!(
                mx.latency(w[0]) <= mx.latency(w[1]),
                "latency not monotone at {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn mx_asymptotic_bandwidth_near_10g() {
        let mx = MxModel::default();
        let bw = mx.bandwidth(64 * 1024 * 1024); // 64 MiB
        let gbps = bw * 8.0 / 1e9;
        assert!((9.0..=10.1).contains(&gbps), "asymptotic {gbps} Gb/s");
    }

    #[test]
    fn mx_rendezvous_adds_handshake() {
        let mx = MxModel::default();
        let just_below = mx.latency(mx.rendezvous_threshold);
        let just_above = mx.latency(mx.rendezvous_threshold + 1);
        let delta = just_above - just_below;
        assert!(delta >= mx.rendezvous_handshake);
    }

    #[test]
    fn mx_cost_splits_sum_to_total() {
        let mx = MxModel::default();
        for size in [1u64, 100, 4096, 1 << 20] {
            let c = mx.cost(size);
            assert_eq!(c.one_way(), c.sender + c.transit + c.receiver);
            assert!(c.sender > SimDuration::ZERO);
            assert!(c.receiver > SimDuration::ZERO);
            assert!(c.transit > SimDuration::ZERO);
        }
    }

    #[test]
    fn arrival_excludes_receiver_overhead() {
        let mx = MxModel::default();
        let c = mx.cost(128);
        let t0 = SimTime::from_us(100);
        assert_eq!(c.arrival(t0), t0 + c.sender + c.transit);
    }

    #[test]
    fn min_transit_is_the_infimum_over_sizes() {
        // The lookahead contract: no priced size may undercut
        // min_transit(). Sweep sizes across every plateau boundary and
        // the rendezvous threshold.
        let mx = MxModel::default();
        let tcp = TcpModel::default();
        let sizes: Vec<u64> = (0..26)
            .map(|i| 1u64 << i)
            .chain([0, 32, 33, 1024, 1025, 4096, 4097, 32 * 1024 + 1])
            .collect();
        for model in [&mx as &dyn NetworkModel, &tcp] {
            for &w in &sizes {
                assert!(
                    model.cost(w).transit >= model.min_transit(),
                    "{} transit({w}) < min_transit",
                    model.name()
                );
            }
            assert!(model.min_transit() > SimDuration::ZERO);
        }
    }

    #[test]
    fn tcp_slower_than_mx_for_small_messages() {
        let mx = MxModel::default();
        let tcp = TcpModel::default();
        assert!(tcp.latency(8) > mx.latency(8));
    }

    #[test]
    fn model_names() {
        assert_eq!(MxModel::default().name(), "myrinet-mx-10g");
        assert_eq!(TcpModel::default().name(), "tcp-10g");
    }

    #[test]
    fn cost_cache_is_transparent() {
        let mx = MxModel::default();
        let mut cache = CostCache::new();
        for &w in &[1u64, 32, 33, 1024, 1 << 16, 32, 1, 1 << 16] {
            assert_eq!(cache.price(&mx, w), mx.cost(w));
        }
        assert_eq!(cache.distinct_sizes(), 5);
    }

    #[test]
    fn cost_cache_keys_by_link_class_not_size_alone() {
        use crate::topology::{LinkClass, Topology, TopologyKind};
        use std::sync::Arc;
        let topo = Topology::new(
            TopologyKind::TwoLevel,
            Arc::new(MxModel::default()),
            vec![0, 0, 1, 1],
        );
        let mx = MxModel::default();
        let mut cache = CostCache::new();
        // Same wire size, two classes: distinct entries, distinct prices.
        let local = cache.price_class(&topo, LinkClass(0), 4096);
        let inter = cache.price_class(&topo, LinkClass(1), 4096);
        assert_eq!(local, mx.cost(4096));
        assert!(inter.transit > local.transit);
        assert_eq!(cache.distinct_sizes(), 2);
        // Class 0 and the size-only front-end share one cache line.
        assert_eq!(cache.price(&mx, 4096), local);
        assert_eq!(cache.distinct_sizes(), 2);
    }

    /// A pathological model whose every cost is zero: `bandwidth()` must
    /// degrade to rate 0, never inf/NaN (ISSUE 10 satellite; same
    /// treatment the telemetry samplers pin for degenerate intervals).
    struct ZeroModel;
    impl NetworkModel for ZeroModel {
        fn cost(&self, _wire_bytes: u64) -> MsgCost {
            MsgCost::default()
        }
        fn name(&self) -> &'static str {
            "zero"
        }
    }

    #[test]
    fn bandwidth_never_produces_nan_or_inf() {
        let mx = MxModel::default();
        let tcp = TcpModel::default();
        let zero = ZeroModel;
        for model in [&mx as &dyn NetworkModel, &tcp, &zero] {
            for w in [0u64, 1, 32, 1024, 1 << 20] {
                let bw = model.bandwidth(w);
                assert!(bw.is_finite(), "{} bandwidth({w}) = {bw}", model.name());
                assert!(bw >= 0.0);
            }
        }
        // The two degenerate corners explicitly: zero bytes and zero latency.
        assert_eq!(mx.bandwidth(0), 0.0);
        assert_eq!(zero.bandwidth(1 << 20), 0.0);
        assert_eq!(zero.bandwidth(0), 0.0);
    }
}
