//! Endpoint-aware network topologies (DESIGN.md §2.9).
//!
//! The point-to-point models in [`crate::network`] price a message by its
//! wire size alone — one uniform pipe. Real machines are not uniform:
//! intra-cluster links (one switch hop) are shorter and fatter than the
//! links that leave a cluster, climb a fat-tree, or cross a dragonfly
//! global channel. A [`Topology`] layers that non-uniformity *on top of*
//! a base [`NetworkModel`]: every `(src, dst)` rank pair maps to a small
//! **link class**, and each class prices a transfer as the base model's
//! cost with its transit component tapered (bandwidth division) and
//! extended (per-hop switch latency). Sender and receiver CPU shares are
//! untouched — the library call costs the same no matter how far the
//! bytes travel.
//!
//! Class 0 is always the base model **verbatim**: [`TopologyKind::Flat`]
//! maps every pair to class 0, which makes it a bit-for-bit oracle of
//! the legacy size-only pricing (pinned by `tests/topology_oracle.rs`
//! and by every pre-v7 BENCH digest). Placement is derived from the
//! run's `ClusterMap`: one cluster = one switch/leaf/group-member, so
//! the protocol's containment domains and the wire's locality domains
//! coincide — exactly the machine the paper's §VI argument assumes.

use crate::network::{MsgCost, NetworkModel};
use det_sim::SimDuration;
use std::sync::Arc;

/// Per-hop switch traversal latency added to every non-local class.
pub const HOP_PS: u64 = 100_000; // 100 ns per switch hop

/// A link class: the equivalence class of `(src, dst)` pairs that share
/// one pricing rule. Class 0 ([`LinkClass::LOCAL`]) is the base model
/// verbatim; higher classes are progressively farther links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkClass(pub u8);

impl LinkClass {
    /// The intra-cluster (base-model-verbatim) class.
    pub const LOCAL: LinkClass = LinkClass(0);
}

/// The shape of the machine above the cluster level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// One uniform pipe: every pair is class 0. The oracle of the
    /// legacy size-only models.
    Flat,
    /// Two link classes: intra-cluster (class 0) and inter-cluster
    /// (class 1) — the minimal machine the paper's measurements imply.
    TwoLevel,
    /// k-ary fat tree with clusters as leaves: class = number of tree
    /// levels a message must ascend, with per-level bandwidth taper.
    /// Requires `k >= 2`.
    FatTree { k: u32 },
    /// Dragonfly with `g` groups of clusters: group-local links
    /// (class 1) and global links (class 2). Requires `g >= 1`.
    Dragonfly { g: u32 },
}

/// Rank-placement-aware pricing over a base [`NetworkModel`].
///
/// Built once per run from the run's cluster assignment (`assignment[r]`
/// = cluster of rank `r`); immutable and `Send + Sync`, so one `Arc`
/// serves every shard of a sharded run.
pub struct Topology {
    kind: TopologyKind,
    base: Arc<dyn NetworkModel>,
    cluster_of: Vec<u32>,
    n_clusters: u32,
    /// Dragonfly: clusters per group (ceil). Unused otherwise.
    group_size: u32,
    /// Number of distinct link classes (`1 + highest class`).
    n_classes: u8,
}

impl Topology {
    /// Build a topology over `base` with rank `r` placed in cluster
    /// `cluster_of[r]`.
    ///
    /// # Panics
    /// Panics on a degenerate shape (`FatTree` with `k < 2`,
    /// `Dragonfly` with `g == 0`).
    pub fn new(kind: TopologyKind, base: Arc<dyn NetworkModel>, cluster_of: Vec<u32>) -> Self {
        let n_clusters = cluster_of.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        let group_size = match kind {
            TopologyKind::Dragonfly { g } => {
                assert!(g >= 1, "Dragonfly requires g >= 1");
                n_clusters.div_ceil(g.min(n_clusters.max(1)))
            }
            _ => 1,
        };
        let n_classes = match kind {
            _ if n_clusters <= 1 => 1,
            TopologyKind::Flat => 1,
            TopologyKind::TwoLevel => 2,
            TopologyKind::FatTree { k } => {
                assert!(k >= 2, "FatTree requires k >= 2");
                // Depth of the smallest k-ary tree covering the clusters:
                // the highest class any pair can reach.
                let mut depth = 0u8;
                let mut cap = 1u64;
                while cap < n_clusters as u64 {
                    cap *= k as u64;
                    depth += 1;
                }
                1 + depth
            }
            TopologyKind::Dragonfly { .. } => {
                let groups = n_clusters.div_ceil(group_size);
                if groups > 1 {
                    3
                } else {
                    2
                }
            }
        };
        Topology {
            kind,
            base,
            cluster_of,
            n_clusters,
            group_size,
            n_classes,
        }
    }

    /// The flat (oracle) topology over `base`.
    pub fn flat(base: Arc<dyn NetworkModel>, cluster_of: Vec<u32>) -> Self {
        Topology::new(TopologyKind::Flat, base, cluster_of)
    }

    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// The base model class 0 prices verbatim.
    pub fn base(&self) -> &Arc<dyn NetworkModel> {
        &self.base
    }

    pub fn n_clusters(&self) -> u32 {
        self.n_clusters
    }

    /// Number of distinct link classes (1 for flat / single-cluster).
    pub fn n_classes(&self) -> u8 {
        self.n_classes
    }

    /// Cluster of rank `r`.
    #[inline]
    pub fn cluster_of(&self, rank: u32) -> u32 {
        self.cluster_of[rank as usize]
    }

    /// Link class between two *clusters*.
    #[inline]
    pub fn cluster_class(&self, c1: u32, c2: u32) -> LinkClass {
        if c1 == c2 {
            return LinkClass::LOCAL;
        }
        match self.kind {
            TopologyKind::Flat => LinkClass::LOCAL,
            TopologyKind::TwoLevel => LinkClass(1),
            TopologyKind::FatTree { k } => {
                // Levels both sides must ascend before their subtrees meet.
                let (mut a, mut b, mut l) = (c1, c2, 0u8);
                while a != b {
                    a /= k;
                    b /= k;
                    l += 1;
                }
                LinkClass(l)
            }
            TopologyKind::Dragonfly { .. } => {
                if c1 / self.group_size == c2 / self.group_size {
                    LinkClass(1)
                } else {
                    LinkClass(2)
                }
            }
        }
    }

    /// Link class between two *ranks*.
    #[inline]
    pub fn link_class(&self, src: u32, dst: u32) -> LinkClass {
        self.cluster_class(self.cluster_of(src), self.cluster_of(dst))
    }

    /// `(bandwidth taper numerator over 8, switch hops)` for a class.
    /// Class 0 is always `(8, 0)`: the base model untouched.
    fn shape(&self, class: u8) -> (u64, u64) {
        if class == 0 {
            return (8, 0);
        }
        match self.kind {
            TopologyKind::Flat => (8, 0),
            TopologyKind::TwoLevel => (12, 2),
            TopologyKind::FatTree { .. } => (8 + 2 * class as u64, 2 * class as u64),
            TopologyKind::Dragonfly { .. } => {
                if class == 1 {
                    (10, 1)
                } else {
                    (16, 3)
                }
            }
        }
    }

    /// Price a `wire_bytes` transfer on link class `class`: the base
    /// cost with transit tapered by `num/8` and extended by the hop
    /// latency. Class 0 returns the base cost bit-for-bit — the oracle
    /// guarantee every flat digest pins.
    pub fn class_cost(&self, class: LinkClass, wire_bytes: u64) -> MsgCost {
        let base = self.base.cost(wire_bytes);
        if class.0 == 0 {
            return base;
        }
        let (num, hops) = self.shape(class.0);
        let transit = SimDuration::from_ps(
            (base.transit.as_ps().saturating_mul(num) / 8).saturating_add(hops * HOP_PS),
        );
        MsgCost {
            sender: base.sender,
            transit,
            receiver: base.receiver,
        }
    }

    /// Price a transfer between two ranks.
    pub fn cost(&self, src: u32, dst: u32, wire_bytes: u64) -> MsgCost {
        self.class_cost(self.link_class(src, dst), wire_bytes)
    }

    /// Infimum of the transit component over all sizes for `class`. The
    /// base models price transit monotone in size (pinned in
    /// `network.rs` tests) and the class transform is monotone in the
    /// base transit, so the zero-byte cost is the infimum per class.
    pub fn min_transit(&self, class: LinkClass) -> SimDuration {
        self.class_cost(class, 0).transit
    }

    /// Per-class lookahead matrix, indexed by class id: the parallel
    /// engine's per-shard-pair lower bounds are minima over this.
    pub fn min_transit_matrix(&self) -> Vec<SimDuration> {
        (0..self.n_classes)
            .map(|c| self.min_transit(LinkClass(c)))
            .collect()
    }

    /// Lower bound on cross-cluster transit between clusters `c1` and
    /// `c2` — the conservative-parallel lookahead for a shard pair whose
    /// closest clusters are `(c1, c2)`.
    pub fn cluster_min_transit(&self, c1: u32, c2: u32) -> SimDuration {
        self.min_transit(self.cluster_class(c1, c2))
    }

    /// Checkpoint-drain surcharge for stable-storage batches: the extra
    /// `(per-batch latency, picoseconds per byte)` a transfer pays for
    /// crossing the topology's *widest* link class on its way to the
    /// storage tier. `(0, 0)` for flat / single-cluster machines, which
    /// keeps every legacy storage price bit-for-bit.
    pub fn drain_surcharge(&self) -> (SimDuration, u64) {
        let top = LinkClass(self.n_classes - 1);
        if top.0 == 0 {
            return (SimDuration::ZERO, 0);
        }
        let lat = SimDuration::from_ps(
            self.min_transit(top)
                .as_ps()
                .saturating_sub(self.min_transit(LinkClass::LOCAL).as_ps()),
        );
        // Per-byte slope measured over a 1 MiB probe (both base models
        // are affine past their plateaus, so one probe is exact there).
        const PROBE: u64 = 1 << 20;
        let d_total = self
            .class_cost(top, PROBE)
            .transit
            .as_ps()
            .saturating_sub(self.class_cost(LinkClass::LOCAL, PROBE).transit.as_ps());
        let per_byte = d_total.saturating_sub(lat.as_ps()) / PROBE;
        (lat, per_byte)
    }
}

impl std::fmt::Debug for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topology")
            .field("kind", &self.kind)
            .field("base", &self.base.name())
            .field("n_clusters", &self.n_clusters)
            .field("n_classes", &self.n_classes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{MxModel, TcpModel};

    fn blocks(n_ranks: u32, k: u32) -> Vec<u32> {
        (0..n_ranks).map(|r| r * k / n_ranks).collect()
    }

    fn mx() -> Arc<dyn NetworkModel> {
        Arc::new(MxModel::default())
    }

    #[test]
    fn flat_is_the_base_model_verbatim() {
        let topo = Topology::flat(mx(), blocks(16, 4));
        let base = MxModel::default();
        for w in [0u64, 1, 32, 33, 1024, 4096, 1 << 16, 1 << 20] {
            for (s, d) in [(0u32, 1), (0, 15), (7, 8), (3, 3)] {
                assert_eq!(topo.cost(s, d, w), base.cost(w), "({s},{d},{w})");
            }
        }
        assert_eq!(topo.n_classes(), 1);
        assert_eq!(topo.drain_surcharge(), (SimDuration::ZERO, 0));
    }

    #[test]
    fn two_level_separates_intra_and_inter() {
        let topo = Topology::new(TopologyKind::TwoLevel, mx(), blocks(8, 2));
        assert_eq!(topo.n_classes(), 2);
        // Ranks 0..4 are cluster 0, 4..8 cluster 1.
        assert_eq!(topo.link_class(0, 3), LinkClass::LOCAL);
        assert_eq!(topo.link_class(0, 4), LinkClass(1));
        let base = MxModel::default();
        for w in [0u64, 512, 1 << 18] {
            assert_eq!(topo.cost(0, 3, w), base.cost(w), "intra == base");
            let inter = topo.cost(0, 4, w);
            assert!(inter.transit > base.cost(w).transit, "inter pays more");
            assert_eq!(inter.sender, base.cost(w).sender, "CPU shares untouched");
            assert_eq!(inter.receiver, base.cost(w).receiver);
        }
    }

    #[test]
    fn fat_tree_classes_are_tree_distance() {
        // 8 clusters under a binary tree: leaves 0..8.
        let topo = Topology::new(TopologyKind::FatTree { k: 2 }, mx(), blocks(16, 8));
        assert_eq!(topo.n_classes(), 4); // depth 3 + local
        assert_eq!(topo.cluster_class(0, 0), LinkClass(0));
        assert_eq!(topo.cluster_class(0, 1), LinkClass(1)); // siblings
        assert_eq!(topo.cluster_class(0, 2), LinkClass(2)); // one level up
        assert_eq!(topo.cluster_class(0, 7), LinkClass(3)); // across the root
                                                            // Transit strictly grows with class (taper + hops both grow).
        let t: Vec<_> = (0..4).map(|c| topo.min_transit(LinkClass(c))).collect();
        assert!(t[0] < t[1] && t[1] < t[2] && t[2] < t[3], "{t:?}");
    }

    #[test]
    fn dragonfly_groups_local_vs_global() {
        // 6 clusters in 2 groups of 3.
        let topo = Topology::new(TopologyKind::Dragonfly { g: 2 }, mx(), blocks(12, 6));
        assert_eq!(topo.n_classes(), 3);
        assert_eq!(topo.cluster_class(0, 1), LinkClass(1), "same group");
        assert_eq!(topo.cluster_class(0, 3), LinkClass(2), "global link");
        assert!(topo.min_transit(LinkClass(1)) < topo.min_transit(LinkClass(2)));
    }

    #[test]
    fn min_transit_is_the_per_class_infimum() {
        let topos = [
            Topology::new(TopologyKind::TwoLevel, mx(), blocks(8, 4)),
            Topology::new(TopologyKind::FatTree { k: 2 }, mx(), blocks(8, 4)),
            Topology::new(
                TopologyKind::Dragonfly { g: 2 },
                Arc::new(TcpModel::default()),
                blocks(8, 4),
            ),
        ];
        let sizes: Vec<u64> = (0..26)
            .map(|i| 1u64 << i)
            .chain([0, 32, 33, 1024, 1025, 4096, 4097, 32 * 1024 + 1])
            .collect();
        for topo in &topos {
            for c in 0..topo.n_classes() {
                let class = LinkClass(c);
                for &w in &sizes {
                    assert!(
                        topo.class_cost(class, w).transit >= topo.min_transit(class),
                        "{:?} class {c} transit({w}) < min_transit",
                        topo.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn single_cluster_machines_collapse_to_flat() {
        for kind in [
            TopologyKind::TwoLevel,
            TopologyKind::FatTree { k: 4 },
            TopologyKind::Dragonfly { g: 2 },
        ] {
            let topo = Topology::new(kind, mx(), vec![0; 8]);
            assert_eq!(topo.n_classes(), 1, "{kind:?}");
            assert_eq!(topo.drain_surcharge(), (SimDuration::ZERO, 0));
        }
    }

    #[test]
    fn drain_surcharge_matches_the_widest_class() {
        let topo = Topology::new(TopologyKind::TwoLevel, mx(), blocks(8, 2));
        let (lat, per_byte) = topo.drain_surcharge();
        assert!(lat > SimDuration::ZERO);
        let expect =
            topo.min_transit(LinkClass(1)).as_ps() - topo.min_transit(LinkClass(0)).as_ps();
        assert_eq!(lat.as_ps(), expect);
        // MX tapers bandwidth past the plateaus, so a per-byte slope
        // must surface for the inter-cluster class.
        assert!(per_byte > 0);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn degenerate_fat_tree_rejected() {
        let _ = Topology::new(TopologyKind::FatTree { k: 1 }, mx(), blocks(8, 4));
    }
}
