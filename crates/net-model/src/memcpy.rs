//! In-memory copy model for sender-based message logging.
//!
//! HydEE logs the payload of every inter-cluster message by `memcpy`-ing it
//! into a pre-allocated buffer *between* `mx_isend()` and the matching
//! `mx_wait()`, overlapping the copy with the NIC's DMA of the same bytes.
//! Bosilca et al. (EuroMPI'10) measured that commodity memcpy beats Myrinet
//! 10G in both latency and bandwidth, so the overlapped copy is effectively
//! free; the model exposes that reasoning explicitly via
//! [`MemcpyModel::non_overlapped`].

use det_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Cost model for copying a payload into the sender-side log.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemcpyModel {
    /// Fixed call overhead (function call, cache warm-up).
    pub latency: SimDuration,
    /// Copy throughput in bytes per microsecond. Default 6000 B/us = 6 GB/s,
    /// comfortably above the 1.25 GB/s of Myrinet 10G.
    pub bytes_per_us: u64,
    /// Per-mille of the copy time that cannot be hidden even with perfect
    /// overlap (cache pollution / memory-bandwidth interference with the
    /// NIC's DMA). This is what separates "full message logging" from
    /// partial logging in the paper's Figure 6 while staying negligible
    /// in a ping-pong (Figure 5).
    pub residual_permille: u32,
}

impl Default for MemcpyModel {
    fn default() -> Self {
        MemcpyModel {
            latency: SimDuration::from_ns(100),
            bytes_per_us: 6_000,
            residual_permille: 30,
        }
    }
}

impl MemcpyModel {
    /// Raw time to copy `bytes`.
    pub fn copy_time(&self, bytes: u64) -> SimDuration {
        // ps = bytes / (bytes/us) * 1e6
        self.latency + SimDuration::from_ps(bytes.saturating_mul(1_000_000) / self.bytes_per_us)
    }

    /// The part of the copy that canNOT be hidden behind a concurrent
    /// network transmission taking `transmit` time: the larger of
    /// `copy - transmit` (copy outlasts the transfer) and the residual
    /// interference fraction of the copy.
    ///
    /// With default parameters the first term is zero for every message
    /// (memcpy beats Myrinet 10G — the paper's "sender-based message
    /// logging has no impact on performance" result) and only the small
    /// residual remains.
    pub fn non_overlapped(&self, bytes: u64, transmit: SimDuration) -> SimDuration {
        let copy = self.copy_time(bytes);
        let residual = SimDuration::from_ps(copy.as_ps() * self.residual_permille as u64 / 1000);
        copy.saturating_sub(transmit).max(residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{MxModel, NetworkModel};

    #[test]
    fn copy_time_scales_linearly() {
        let m = MemcpyModel::default();
        let base = m.copy_time(0);
        assert_eq!(base, m.latency);
        let one_mb = m.copy_time(1 << 20);
        let two_mb = m.copy_time(2 << 20);
        // Subtracting the fixed latency, 2 MB should take twice as long.
        let a = (one_mb - m.latency).as_ps();
        let b = (two_mb - m.latency).as_ps();
        assert!((b as i128 - 2 * a as i128).unsigned_abs() <= 2);
    }

    #[test]
    fn memcpy_faster_than_myrinet() {
        // The premise of [6]: copy bandwidth exceeds wire bandwidth, so the
        // overlapped log copy hides entirely behind transmission.
        let m = MemcpyModel::default();
        let mx = MxModel::default();
        for bytes in [4 * 1024u64, 64 * 1024, 1 << 20, 8 << 20] {
            let transmit = mx.cost(bytes).transit;
            let hidden = m.copy_time(bytes).saturating_sub(transmit);
            assert_eq!(hidden, SimDuration::ZERO, "copy of {bytes} B not hidden");
            // Only the residual interference fraction remains.
            let left = m.non_overlapped(bytes, transmit);
            assert!(
                left.as_ps() * 1000
                    <= m.copy_time(bytes).as_ps() * (m.residual_permille as u64 + 1),
                "residual too large for {bytes} B"
            );
        }
    }

    #[test]
    fn tiny_messages_expose_call_latency() {
        // For tiny messages, transmission is ~3 us while copy is ~0.1 us,
        // still hidden.
        let m = MemcpyModel {
            residual_permille: 0,
            ..Default::default()
        };
        let mx = MxModel::default();
        assert_eq!(m.non_overlapped(8, mx.cost(8).transit), SimDuration::ZERO);
    }

    #[test]
    fn non_overlapped_when_transmit_is_short() {
        let m = MemcpyModel::default();
        let copied = m.copy_time(1 << 20);
        let remainder = m.non_overlapped(1 << 20, SimDuration::from_ns(10));
        assert_eq!(remainder, copied - SimDuration::from_ns(10));
    }

    #[test]
    fn residual_scales_with_copy_size() {
        let m = MemcpyModel::default();
        let big = m.non_overlapped(8 << 20, SimDuration::from_secs(1));
        let small = m.non_overlapped(1 << 10, SimDuration::from_secs(1));
        assert!(big > small);
        // ~3% of the copy time by default.
        let copy = m.copy_time(8 << 20);
        assert_eq!(big.as_ps(), copy.as_ps() * 30 / 1000);
    }
}
