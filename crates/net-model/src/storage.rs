//! Stable (reliable) storage model for checkpoints.
//!
//! HydEE saves cluster-coordinated checkpoints — including the sender-side
//! message logs and the RPP table — to reliable storage (Algorithm 1,
//! line 21), and restarts failed clusters from it. The model prices writes
//! and reads with a fixed setup latency plus a bandwidth term, and lets the
//! harness model the *I/O burst* contention the paper discusses (§VI): when
//! `concurrent_writers > 1` share the store, each sees `1/n` of the
//! aggregate bandwidth.

use det_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Reliable storage (parallel filesystem / SSD tier) cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StableStorage {
    /// Per-operation setup latency.
    pub latency: SimDuration,
    /// Aggregate write bandwidth, bytes per microsecond (default 1 GB/s).
    pub write_bytes_per_us: u64,
    /// Aggregate read bandwidth, bytes per microsecond (default 2 GB/s).
    pub read_bytes_per_us: u64,
}

impl Default for StableStorage {
    fn default() -> Self {
        StableStorage {
            latency: SimDuration::from_us(500),
            write_bytes_per_us: 1_000,
            read_bytes_per_us: 2_000,
        }
    }
}

impl StableStorage {
    /// Time for one writer to persist `bytes` while `concurrent_writers`
    /// share the aggregate bandwidth.
    pub fn write_time(&self, bytes: u64, concurrent_writers: u64) -> SimDuration {
        let writers = concurrent_writers.max(1);
        self.latency
            + SimDuration::from_ps(
                bytes.saturating_mul(1_000_000) / self.write_bytes_per_us * writers,
            )
    }

    /// Time for one reader to load `bytes` while `concurrent_readers` share
    /// the aggregate bandwidth.
    pub fn read_time(&self, bytes: u64, concurrent_readers: u64) -> SimDuration {
        let readers = concurrent_readers.max(1);
        self.latency
            + SimDuration::from_ps(
                bytes.saturating_mul(1_000_000) / self.read_bytes_per_us * readers,
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_scales_with_contention() {
        let s = StableStorage::default();
        let alone = s.write_time(1 << 30, 1);
        let crowd = s.write_time(1 << 30, 8);
        // 8 concurrent writers each see ~1/8 bandwidth.
        let a = (alone - s.latency).as_ps();
        let c = (crowd - s.latency).as_ps();
        assert_eq!(c, a * 8);
    }

    #[test]
    fn read_faster_than_write() {
        let s = StableStorage::default();
        assert!(s.read_time(1 << 30, 1) < s.write_time(1 << 30, 1));
    }

    #[test]
    fn zero_writers_treated_as_one() {
        let s = StableStorage::default();
        assert_eq!(s.write_time(4096, 0), s.write_time(4096, 1));
    }

    #[test]
    fn io_burst_motivation() {
        // The paper's §VI argument: all clusters checkpointing at once (the
        // coordinated-checkpointing burst) is much slower per-cluster than
        // staggered cluster checkpoints.
        let s = StableStorage::default();
        let staggered = s.write_time(8 << 30, 1);
        let burst = s.write_time(8 << 30, 16);
        assert!(burst.as_ps() > 10 * staggered.as_ps());
    }
}
