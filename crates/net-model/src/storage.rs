//! Stable (reliable) storage model for checkpoints.
//!
//! HydEE saves cluster-coordinated checkpoints — including the sender-side
//! message logs and the RPP table — to reliable storage (Algorithm 1,
//! line 21), and restarts failed clusters from it. Two layers model the
//! cost:
//!
//! * [`StableStorage`] — the closed-form price of one transfer: a fixed
//!   setup latency plus a bandwidth term, with an optional static
//!   `concurrent` divisor for callers that know their own contention.
//! * [`StorageLedger`] — the *dynamic* contention model (DESIGN.md §2.4):
//!   a per-run ledger that prices each write/read batch by the transfers
//!   actually overlapping it in virtual time. The I/O burst the paper
//!   discusses (§VI) — all clusters checkpointing at once under
//!   coordinated checkpointing, versus HydEE's staggered per-cluster
//!   schedules — falls out of the same mechanism instead of a hand-fed
//!   divisor: overlapping batches queue on the shared aggregate pipe,
//!   non-overlapping batches each see full bandwidth.

use det_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Reliable storage (parallel filesystem / SSD tier) cost model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StableStorage {
    /// Per-operation setup latency.
    pub latency: SimDuration,
    /// Aggregate write bandwidth, bytes per microsecond (default 1 GB/s).
    pub write_bytes_per_us: u64,
    /// Aggregate read bandwidth, bytes per microsecond (default 2 GB/s).
    pub read_bytes_per_us: u64,
}

impl Default for StableStorage {
    fn default() -> Self {
        StableStorage {
            latency: SimDuration::from_us(500),
            write_bytes_per_us: 1_000,
            read_bytes_per_us: 2_000,
        }
    }
}

/// `bytes` over `bytes_per_us` shared `ways` ways, in picoseconds —
/// computed in u128 (multiply *before* divide, so nothing truncates) and
/// saturated to `u64` on the way out. The old u64 arithmetic both
/// truncated (`bytes * 1e6 / bw` rounds down before the `* ways`
/// amplifies the loss) and overflowed for large images × many writers
/// (16 GiB × 4096 writers wraps 2^64).
fn transfer_ps(bytes: u64, bytes_per_us: u64, ways: u64) -> u64 {
    let ps = ((bytes as u128) * 1_000_000u128).saturating_mul(ways.max(1) as u128)
        / (bytes_per_us.max(1) as u128);
    u64::try_from(ps).unwrap_or(u64::MAX)
}

impl StableStorage {
    /// Time for one writer to persist `bytes` while `concurrent_writers`
    /// share the aggregate bandwidth (static divisor; see
    /// [`StorageLedger`] for contention derived from actual overlap).
    pub fn write_time(&self, bytes: u64, concurrent_writers: u64) -> SimDuration {
        SimDuration::from_ps(self.latency.as_ps().saturating_add(transfer_ps(
            bytes,
            self.write_bytes_per_us,
            concurrent_writers,
        )))
    }

    /// Time for one reader to load `bytes` while `concurrent_readers` share
    /// the aggregate bandwidth.
    pub fn read_time(&self, bytes: u64, concurrent_readers: u64) -> SimDuration {
        SimDuration::from_ps(self.latency.as_ps().saturating_add(transfer_ps(
            bytes,
            self.read_bytes_per_us,
            concurrent_readers,
        )))
    }
}

/// Dynamic I/O-contention ledger over a [`StableStorage`].
///
/// One ledger lives per run (owned by the protocol instance) and sees
/// every checkpoint write and restart read as a *batch*: a set of
/// processes that start a coordinated transfer of `total_bytes` at the
/// same virtual instant and complete together. The ledger keeps one busy
/// timeline per direction; a batch that overlaps transfers already
/// underway queues behind them (FIFO on the shared aggregate pipe) and
/// its members are all charged the queueing delay plus the setup latency
/// plus `total_bytes` at full aggregate bandwidth.
///
/// Pricing equivalences that make this a drop-in replacement for the old
/// static divisor:
///
/// * a *non-overlapping* batch (HydEE's staggered cluster checkpoints)
///   costs `latency + total/bw` — exactly the old
///   `write_time(total/n, n)` each of its `n` members paid;
/// * a machine-wide simultaneous batch (coordinated checkpointing's
///   full-width burst) also costs `latency + total/bw` per member — the
///   old `write_time(total/n, n)` again, but now because everyone shares
///   one pipe, not because the caller guessed the divisor;
/// * two batches that *do* overlap — which the static model silently
///   priced as if they were alone — now queue: the second pays the
///   first's residual transfer time on top of its own.
///
/// Determinism: the ledger is driven only by protocol events, whose
/// order the §2 contract already fixes, and does integer arithmetic
/// only. Rollback does not rewind the ledger — storage traffic that
/// happened, happened; a restarted cluster's new writes still queue
/// behind transfers in progress at the failure.
#[derive(Debug, Clone, Copy)]
pub struct StorageLedger {
    cfg: StableStorage,
    write_busy_until: SimTime,
    read_busy_until: SimTime,
    /// Extra per-batch latency for draining through the interconnect to
    /// the storage tier (DESIGN.md §2.9): set from the run topology's
    /// widest link class, zero for flat / directly-attached storage —
    /// which keeps every legacy price bit-for-bit.
    drain_latency: SimDuration,
    /// Extra picoseconds per byte on the same drain path.
    drain_ps_per_byte: u64,
}

/// Priced breakdown of one ledger batch: how long it waited for the
/// shared pipe and how long the pipe then served it. Telemetry renders
/// the two as separate spans on the storage-pipe track, so a saturated
/// pipe is visible as queueing rather than mysteriously slow transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageBatch {
    /// Residual time of transfers already underway (0 when the pipe is
    /// idle at admission).
    pub queued: SimDuration,
    /// Setup latency + transfer at full aggregate bandwidth.
    pub service: SimDuration,
}

impl StorageBatch {
    /// The duration each member of the batch is charged.
    pub fn total(&self) -> SimDuration {
        self.queued + self.service
    }
}

impl StorageLedger {
    pub fn new(cfg: StableStorage) -> Self {
        StorageLedger {
            cfg,
            write_busy_until: SimTime::ZERO,
            read_busy_until: SimTime::ZERO,
            drain_latency: SimDuration::ZERO,
            drain_ps_per_byte: 0,
        }
    }

    /// Route this ledger's batches through an interconnect drain path:
    /// every batch pays `latency` extra setup and `ps_per_byte` extra
    /// serialization, and the drain occupies the shared pipe (so
    /// coordinated checkpointing's full-width burst and HydEE's
    /// staggered writes contend over the drain links too). The values
    /// come from [`crate::topology::Topology::drain_surcharge`]; the
    /// `(ZERO, 0)` flat surcharge leaves pricing bit-for-bit.
    pub fn with_drain_surcharge(mut self, latency: SimDuration, ps_per_byte: u64) -> Self {
        self.drain_latency = latency;
        self.drain_ps_per_byte = ps_per_byte;
        self
    }

    /// The active drain surcharge `(per-batch latency, ps per byte)`.
    pub fn drain_surcharge(&self) -> (SimDuration, u64) {
        (self.drain_latency, self.drain_ps_per_byte)
    }

    /// The underlying closed-form cost model (for estimates).
    pub fn storage(&self) -> &StableStorage {
        &self.cfg
    }

    fn batch(
        busy_until: &mut SimTime,
        now: SimTime,
        latency: SimDuration,
        ps: u64,
    ) -> StorageBatch {
        let queue = busy_until.since(now); // saturates to ZERO when idle
        let transfer = SimDuration::from_ps(ps);
        *busy_until = now + queue + transfer;
        StorageBatch {
            queued: queue,
            service: latency + transfer,
        }
    }

    /// Price a coordinated write batch of `total_bytes` starting at
    /// `now`. Returns the duration each member of the batch is charged
    /// (members complete together).
    pub fn write(&mut self, now: SimTime, total_bytes: u64) -> SimDuration {
        self.write_batch(now, total_bytes).total()
    }

    /// [`StorageLedger::write`] with the queue/service breakdown.
    pub fn write_batch(&mut self, now: SimTime, total_bytes: u64) -> StorageBatch {
        let ps = transfer_ps(total_bytes, self.cfg.write_bytes_per_us, 1)
            .saturating_add(total_bytes.saturating_mul(self.drain_ps_per_byte));
        Self::batch(
            &mut self.write_busy_until,
            now,
            self.cfg.latency + self.drain_latency,
            ps,
        )
    }

    /// Price a coordinated read batch of `total_bytes` starting at `now`
    /// (restart: a rolled-back set of processes loads its checkpoints).
    pub fn read(&mut self, now: SimTime, total_bytes: u64) -> SimDuration {
        self.read_batch(now, total_bytes).total()
    }

    /// [`StorageLedger::read`] with the queue/service breakdown.
    pub fn read_batch(&mut self, now: SimTime, total_bytes: u64) -> StorageBatch {
        let ps = transfer_ps(total_bytes, self.cfg.read_bytes_per_us, 1)
            .saturating_add(total_bytes.saturating_mul(self.drain_ps_per_byte));
        Self::batch(
            &mut self.read_busy_until,
            now,
            self.cfg.latency + self.drain_latency,
            ps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_scales_with_contention() {
        let s = StableStorage::default();
        let alone = s.write_time(1 << 30, 1);
        let crowd = s.write_time(1 << 30, 8);
        // 8 concurrent writers each see ~1/8 bandwidth.
        let a = (alone - s.latency).as_ps();
        let c = (crowd - s.latency).as_ps();
        assert_eq!(c, a * 8);
    }

    #[test]
    fn read_faster_than_write() {
        let s = StableStorage::default();
        assert!(s.read_time(1 << 30, 1) < s.write_time(1 << 30, 1));
    }

    #[test]
    fn zero_writers_treated_as_one() {
        let s = StableStorage::default();
        assert_eq!(s.write_time(4096, 0), s.write_time(4096, 1));
    }

    #[test]
    fn io_burst_motivation() {
        // The paper's §VI argument: all clusters checkpointing at once (the
        // coordinated-checkpointing burst) is much slower per-cluster than
        // staggered cluster checkpoints.
        let s = StableStorage::default();
        let staggered = s.write_time(8 << 30, 1);
        let burst = s.write_time(8 << 30, 16);
        assert!(burst.as_ps() > 10 * staggered.as_ps());
    }

    #[test]
    fn large_image_times_many_writers_saturates_instead_of_wrapping() {
        // Regression: 16 GiB × 4096 writers. The old u64
        // `bytes * 1e6 / bw * writers` path wrapped (debug: panicked)
        // once the product crossed 2^64; the u128 path is exact until the
        // result itself exceeds u64 picoseconds, then saturates.
        let s = StableStorage::default();
        let t = s.write_time(16 << 30, 4096);
        let want = (16u128 << 30) * 1_000_000 * 4096 / 1_000;
        assert_eq!(t.as_ps() as u128, want + s.latency.as_ps() as u128);
        // Push past u64 picoseconds entirely: saturate, don't wrap.
        let huge = s.write_time(u64::MAX, u64::MAX);
        assert_eq!(huge.as_ps(), u64::MAX);
    }

    #[test]
    fn multiply_before_divide_does_not_truncate() {
        // bw = 3 B/us does not divide 7 MB * 1e6 evenly; the old
        // divide-first order lost up to `writers - 1` quanta.
        let s = StableStorage {
            latency: SimDuration::ZERO,
            write_bytes_per_us: 3,
            read_bytes_per_us: 3,
        };
        let t = s.write_time(7, 9);
        assert_eq!(t.as_ps(), 7 * 1_000_000 * 9 / 3);
    }

    #[test]
    fn ledger_idle_batch_costs_like_the_static_model() {
        let s = StableStorage::default();
        let mut ledger = StorageLedger::new(s);
        // A lone batch of n writers sharing the aggregate == the old
        // per-writer price with the static divisor.
        let total = 8u64 << 20;
        let n = 16u64;
        let got = ledger.write(SimTime::from_ms(1), total);
        assert_eq!(got, s.write_time(total / n, n));
    }

    #[test]
    fn ledger_overlapping_batches_queue() {
        let s = StableStorage::default();
        let mut ledger = StorageLedger::new(s);
        let now = SimTime::from_ms(10);
        let first = ledger.write(now, 1 << 20);
        let second = ledger.write(now, 1 << 20);
        // The second batch pays the first's full residual transfer.
        assert_eq!(
            second.as_ps() - first.as_ps(),
            (first - s.latency).as_ps(),
            "second batch queues behind the first"
        );
        // A batch arriving after the pipe drains is unaffected.
        let later = now + SimDuration::from_secs(10);
        assert_eq!(ledger.write(later, 1 << 20), first);
    }

    #[test]
    fn ledger_partial_overlap_pays_the_residual() {
        let s = StableStorage {
            latency: SimDuration::ZERO,
            write_bytes_per_us: 1_000,
            read_bytes_per_us: 2_000,
        };
        let mut ledger = StorageLedger::new(s);
        let t0 = SimTime::from_us(0);
        let first = ledger.write(t0, 1_000_000); // busy for 1000 us
        assert_eq!(first, SimDuration::from_us(1000));
        // Arrives 600 us in: 400 us of residual queueing.
        let second = ledger.write(SimTime::from_us(600), 1_000_000);
        assert_eq!(second, SimDuration::from_us(400 + 1000));
    }

    #[test]
    fn batch_breakdown_sums_to_the_charged_duration() {
        let s = StableStorage::default();
        let mut a = StorageLedger::new(s);
        let mut b = StorageLedger::new(s);
        let now = SimTime::from_ms(1);
        for bytes in [1u64 << 20, 1 << 20, 4 << 20] {
            let batch = a.write_batch(now, bytes);
            assert_eq!(batch.total(), b.write(now, bytes), "write equivalence");
            let batch = a.read_batch(now, bytes);
            assert_eq!(batch.total(), b.read(now, bytes), "read equivalence");
        }
        // The second overlapping batch's wait shows up as `queued`.
        let mut l = StorageLedger::new(s);
        let first = l.write_batch(now, 1 << 20);
        assert_eq!(first.queued, SimDuration::ZERO);
        let second = l.write_batch(now, 1 << 20);
        assert_eq!(second.queued, first.service - s.latency);
    }

    #[test]
    fn zero_drain_surcharge_is_bit_for_bit_free() {
        let s = StableStorage::default();
        let now = SimTime::from_ms(3);
        let mut plain = StorageLedger::new(s);
        let mut drained = StorageLedger::new(s).with_drain_surcharge(SimDuration::ZERO, 0);
        for bytes in [0u64, 1 << 10, 8 << 20, 1 << 30] {
            assert_eq!(
                plain.write_batch(now, bytes),
                drained.write_batch(now, bytes)
            );
            assert_eq!(plain.read_batch(now, bytes), drained.read_batch(now, bytes));
        }
    }

    #[test]
    fn drain_surcharge_extends_service_and_occupies_the_pipe() {
        let s = StableStorage::default();
        let now = SimTime::from_ms(3);
        let lat = SimDuration::from_us(7);
        let per_byte = 5u64; // 5 ps/B
        let bytes = 1u64 << 20;
        let mut plain = StorageLedger::new(s);
        let mut drained = StorageLedger::new(s).with_drain_surcharge(lat, per_byte);
        let p = plain.write_batch(now, bytes);
        let d = drained.write_batch(now, bytes);
        assert_eq!(
            d.service.as_ps(),
            p.service.as_ps() + lat.as_ps() + bytes * per_byte
        );
        // The drain bytes hold the shared pipe: the next same-instant
        // batch queues behind transfer + drain, not transfer alone.
        let p2 = plain.write_batch(now, bytes);
        let d2 = drained.write_batch(now, bytes);
        assert_eq!(d2.queued.as_ps(), p2.queued.as_ps() + bytes * per_byte);
    }

    #[test]
    fn ledger_directions_are_independent_pipes() {
        let s = StableStorage::default();
        let mut ledger = StorageLedger::new(s);
        let now = SimTime::from_ms(1);
        let w = ledger.write(now, 1 << 20);
        // A read at the same instant sees an idle read pipe.
        assert_eq!(ledger.read(now, 1 << 20), s.read_time(1 << 20, 1));
        assert_eq!(
            ledger.write(now, 1 << 20).as_ps(),
            w.as_ps() * 2 - s.latency.as_ps()
        );
    }
}
