//! # net-model — network, memory and storage cost models
//!
//! This crate is the stand-in for the physical testbed of the HydEE paper
//! (Grid'5000 Lille, Myrinet 10G / MX, MPICH2-nemesis). It prices every
//! action the simulated runtime performs:
//!
//! * **[`MxModel`]** — a LogGP-style model of MPICH2 over Myrinet/MX 10G,
//!   calibrated to the figures the paper itself reports: ~3.3 µs small
//!   message latency for 1–32 B, a jump to ~4 µs above 32 B (the "plateau"
//!   the paper blames for its piggybacking peaks), eager/rendezvous switch,
//!   and 10 Gb/s (1.25 GB/s) asymptotic bandwidth.
//! * **[`TcpModel`]** — a slower comparison channel (HydEE also supported
//!   nemesis/TCP).
//! * **[`MemcpyModel`]** — sender-based message logging copies the payload
//!   with `memcpy`; per Bosilca et al. (EuroMPI'10), memcpy latency and
//!   bandwidth beat Myrinet 10G, so an overlapped copy costs (almost)
//!   nothing. The model exposes both the raw copy time and the
//!   *non-overlappable* remainder.
//! * **[`PiggybackPolicy`]** — HydEE piggybacks `(date, phase)` on every
//!   message: inline extra segment below a size threshold (1 KiB in the
//!   paper), separate protocol message above it.
//! * **[`StableStorage`]** — checkpoint write/read costs.
//! * **[`Topology`]** — endpoint-aware pricing over a base model: rank →
//!   cluster → switch placement with flat / two-level / fat-tree /
//!   dragonfly link classes, so intra- and inter-cluster traffic (and
//!   checkpoint drain bursts) stop riding one uniform wire
//!   (DESIGN.md §2.9).
//!
//! All models return [`det_sim::SimDuration`] and are pure functions of
//! their inputs, keeping the simulation deterministic.

pub mod memcpy;
pub mod network;
pub mod piggyback;
pub mod storage;
pub mod topology;

pub use memcpy::MemcpyModel;
pub use network::{CostCache, MsgCost, MxModel, NetworkModel, TcpModel};
pub use piggyback::{PiggybackCost, PiggybackPolicy};
pub use storage::{StableStorage, StorageBatch, StorageLedger};
pub use topology::{LinkClass, Topology, TopologyKind};
