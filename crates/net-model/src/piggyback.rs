//! Piggybacking strategy for protocol metadata.
//!
//! HydEE sends `(date, phase)` with every application message. The paper's
//! MX implementation uses two mechanisms chosen by payload size:
//!
//! * **below 1 KiB** — append one more segment to the `mx_isend()` gather
//!   list: the metadata travels *inline*, enlarging the wire message but
//!   costing no extra copy;
//! * **1 KiB and above** — send the metadata as a *separate* small message
//!   so the large payload is never copied; the separate message largely
//!   overlaps with the payload transfer and costs only its injection
//!   overhead at the sender.
//!
//! [`PiggybackPolicy::apply`] returns which mechanism fires and its cost.

use det_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How the protocol metadata is attached to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PiggybackCost {
    /// Metadata rides inline: the wire message grows by `extra_bytes`.
    Inline { extra_bytes: u64 },
    /// Metadata goes in a separate protocol message: the sender pays
    /// `sender_overhead` extra CPU time, the wire size of the payload
    /// message is unchanged.
    Separate { sender_overhead: SimDuration },
}

/// Size-dependent piggybacking policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PiggybackPolicy {
    /// Bytes of metadata piggybacked on each message: date (8) + phase (8).
    pub metadata_bytes: u64,
    /// Payloads strictly below this ride the metadata inline.
    pub inline_threshold: u64,
    /// Sender CPU cost of injecting the separate metadata message.
    pub separate_overhead: SimDuration,
}

impl Default for PiggybackPolicy {
    fn default() -> Self {
        PiggybackPolicy {
            metadata_bytes: 16,
            inline_threshold: 1024,
            separate_overhead: SimDuration::from_ns(300),
        }
    }
}

impl PiggybackPolicy {
    /// Decide the mechanism for a payload of `payload_bytes`.
    pub fn apply(&self, payload_bytes: u64) -> PiggybackCost {
        if payload_bytes < self.inline_threshold {
            PiggybackCost::Inline {
                extra_bytes: self.metadata_bytes,
            }
        } else {
            PiggybackCost::Separate {
                sender_overhead: self.separate_overhead,
            }
        }
    }

    /// Wire size of the payload message after piggybacking.
    pub fn wire_bytes(&self, payload_bytes: u64) -> u64 {
        match self.apply(payload_bytes) {
            PiggybackCost::Inline { extra_bytes } => payload_bytes + extra_bytes,
            PiggybackCost::Separate { .. } => payload_bytes,
        }
    }

    /// Extra sender CPU time, if any.
    pub fn sender_overhead(&self, payload_bytes: u64) -> SimDuration {
        match self.apply(payload_bytes) {
            PiggybackCost::Inline { .. } => SimDuration::ZERO,
            PiggybackCost::Separate { sender_overhead } => sender_overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_payloads_inline() {
        let p = PiggybackPolicy::default();
        assert_eq!(p.apply(8), PiggybackCost::Inline { extra_bytes: 16 });
        assert_eq!(p.wire_bytes(8), 24);
        assert_eq!(p.sender_overhead(8), SimDuration::ZERO);
    }

    #[test]
    fn threshold_is_exclusive_below() {
        let p = PiggybackPolicy::default();
        assert!(matches!(p.apply(1023), PiggybackCost::Inline { .. }));
        assert!(matches!(p.apply(1024), PiggybackCost::Separate { .. }));
    }

    #[test]
    fn large_payloads_keep_wire_size() {
        let p = PiggybackPolicy::default();
        assert_eq!(p.wire_bytes(1 << 20), 1 << 20);
        assert_eq!(p.sender_overhead(1 << 20), p.separate_overhead);
    }

    #[test]
    fn inline_can_cross_a_plateau() {
        // Reproduces the mechanism of the paper's Figure 5 peaks: a 24 B
        // payload becomes a 40 B wire message, crossing the 32 B MX plateau.
        use crate::network::{MxModel, NetworkModel};
        let p = PiggybackPolicy::default();
        let mx = MxModel::default();
        let native = mx.latency(24);
        let hydee = mx.latency(p.wire_bytes(24));
        assert!(hydee > native);
        let degradation = (hydee.as_ns_f64() - native.as_ns_f64()) / native.as_ns_f64();
        assert!((0.1..0.35).contains(&degradation), "deg={degradation}");
    }
}
