//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — named structs, tuple structs and
//! enums (unit / tuple / named-field variants), all without generics — by
//! walking the raw `proc_macro` token stream (no `syn`/`quote` available
//! offline). `Serialize` emits the serde_json data model: newtype structs
//! serialize transparently, enums externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip `#[...]` attribute pairs and doc comments at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Count top-level comma-separated entries of a tuple-struct/-variant body,
/// treating `<...>` angle-bracket nesting as opaque.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        // Trailing comma must not add a phantom field.
        match body.last() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => fields,
            _ => fields + 1,
        }
    } else {
        0
    }
}

/// Parse the field names of a named-field body (struct or enum variant).
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        i = skip_attrs(body, i);
        i = skip_vis(body, i);
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            break;
        };
        names.push(name.to_string());
        i += 1;
        // Expect ':' then skip the type up to the next top-level comma.
        debug_assert!(matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ':'));
        i += 1;
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        i = skip_attrs(body, i);
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating comma.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(
            p.as_char() != '<',
            "serde stub derive: generics are not supported (type {name})"
        );
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )),
            },
            _ => Item::Struct {
                name,
                fields: Fields::Unit,
            },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(&g.stream().into_iter().collect::<Vec<_>>()),
            },
            other => panic!("serde stub derive: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    }
}

/// Emit the body statements serializing `fields` where the bindings are
/// `self.<name>` / `self.<idx>` (structs) or plain binding names (enums).
fn named_fields_body(names: &[String], accessor: impl Fn(&str) -> String) -> String {
    let mut body = String::from("out.push('{');\n");
    for (k, f) in names.iter().enumerate() {
        if k > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::serialize_json(&{}, out);\n",
            accessor(f)
        ));
    }
    body.push_str("out.push('}');\n");
    body
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct {
            name,
            fields: Fields::Named(names),
        } => {
            let inner = named_fields_body(&names, |f| format!("self.{f}"));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut String) {{\n{inner}}}\n}}"
            )
        }
        Item::Struct {
            name,
            fields: Fields::Tuple(1),
        } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{\n\
             ::serde::Serialize::serialize_json(&self.0, out);\n}}\n}}"
        ),
        Item::Struct {
            name,
            fields: Fields::Tuple(n),
        } => {
            let mut inner = String::from("out.push('[');\n");
            for k in 0..n {
                if k > 0 {
                    inner.push_str("out.push(',');\n");
                }
                inner.push_str(&format!(
                    "::serde::Serialize::serialize_json(&self.{k}, out);\n"
                ));
            }
            inner.push_str("out.push(']');\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut String) {{\n{inner}}}\n}}"
            )
        }
        Item::Struct {
            name,
            fields: Fields::Unit,
        } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{ out.push_str(\"null\"); }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let pat = binds.join(", ");
                        let mut inner = format!("out.push_str(\"{{\\\"{vn}\\\":\");\n");
                        if *n == 1 {
                            inner.push_str("::serde::Serialize::serialize_json(__f0, out);\n");
                        } else {
                            inner.push_str("out.push('[');\n");
                            for (k, b) in binds.iter().enumerate() {
                                if k > 0 {
                                    inner.push_str("out.push(',');\n");
                                }
                                inner.push_str(&format!(
                                    "::serde::Serialize::serialize_json({b}, out);\n"
                                ));
                            }
                            inner.push_str("out.push(']');\n");
                        }
                        inner.push_str("out.push('}');\n");
                        arms.push_str(&format!("{name}::{vn}({pat}) => {{\n{inner}}}\n"));
                    }
                    Fields::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut inner = format!("out.push_str(\"{{\\\"{vn}\\\":\");\n");
                        inner.push_str(&named_fields_body(fields, |f| f.to_string()));
                        inner.push_str("out.push('}');\n");
                        arms.push_str(&format!("{name}::{vn} {{ {pat} }} => {{\n{inner}}}\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut String) {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    body.parse()
        .expect("serde stub derive: generated code must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde stub derive: generated code must parse")
}
