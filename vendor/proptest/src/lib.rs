//! Offline stand-in for `proptest`, vendored because this workspace builds
//! without network access to crates.io.
//!
//! Keeps the surface the workspace's property tests use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, range and tuple
//! strategies, `prop_map`/`prop_filter_map`, `prop::collection::{vec,
//! btree_set}`, `ProptestConfig` — over a deterministic splitmix64 RNG.
//! No shrinking: a failing case panics with the generated inputs visible
//! in the assertion message, which is enough for CI triage here.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured by the stub; the
    /// other fields keep struct-update syntax from real proptest working.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; unused.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(32);
            ProptestConfig {
                cases,
                max_shrink_iters: 0,
                max_global_rejects: 65536,
            }
        }
    }

    /// Deterministic RNG (splitmix64). Each test case derives its stream
    /// from the case index, so runs are reproducible across machines.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u64) -> Self {
            // Fixed base seed; distinct, well-mixed stream per case.
            TestRng {
                state: 0x9e37_79b9_7f4a_7c15u64
                    .wrapping_add(case.wrapping_mul(0xbf58_476d_1ce4_e5b9)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift reduction; bias is irrelevant for testing.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values. Unlike real proptest there is no value tree
    /// and no shrinking: `generate` draws a sample directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate until `f` returns `Some`. `whence` labels the filter in
        /// the panic message if the filter never accepts.
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }
    }

    /// Strategies are also usable behind references.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map `{}` rejected 10000 consecutive samples",
                self.whence
            );
        }
    }

    /// `Just` yields its value every time.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi - lo;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    pub struct AnyStrategy<A> {
        _marker: std::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`'s whole domain.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi_inclusive {
                self.lo
            } else {
                self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the yield, as in real proptest; retry a
            // bounded number of times to approach the target size.
            for _ in 0..target.saturating_mul(10).max(16) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// `BTreeSet` strategy targeting `size` distinct elements.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// The property-test macro: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Stub `prop_assert!`: plain `assert!` (a failure panics immediately —
/// there is no shrinking pass to resume).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 1u8..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u32..5, any::<bool>()), 2..6),
            s in prop::collection::btree_set(0u8..4, 1..=3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!s.is_empty() && s.len() <= 3);
        }

        #[test]
        fn filter_map_filters(x in (0u32..100).prop_filter_map("evens", |x| {
            if x % 2 == 0 { Some(x) } else { None }
        })) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::test_runner::TestRng::for_case(5);
        let mut b = crate::test_runner::TestRng::for_case(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mut_patterns_work() {
        proptest! {
            #[allow(unused_mut)]
            fn inner(mut v in prop::collection::vec(0u16..9, 0..8)) {
                v.push(1);
                prop_assert!(!v.is_empty());
            }
        }
        inner();
    }
}
