//! Offline stand-in for `serde`, vendored because this workspace builds
//! without network access to crates.io.
//!
//! It keeps the two trait names and the derive-macro ergonomics the real
//! crate has, but collapses the data model to the one thing this workspace
//! actually does with serialization: emitting JSON lines for result rows.
//!
//! * [`Serialize`] writes a JSON encoding of `self` into a `String`.
//! * [`Deserialize`] is a marker only — nothing in the workspace parses.
//!
//! `#[derive(Serialize, Deserialize)]` comes from the sibling
//! `serde_derive` stub and targets exactly these traits.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-emitting serialization.
pub trait Serialize {
    /// Append the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait; derived for parity with real serde but never exercised.
pub trait Deserialize {}

/// Escape and append a JSON string literal.
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_display_num {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {})*
    };
}

impl_display_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {})*
    };
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}
impl Deserialize for String {}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_str(&self.to_string(), out);
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl Serialize for () {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}
impl Deserialize for () {}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Maps serialize as arrays of `[key, value]` pairs: keys in this
/// workspace are often tuples/newtypes, which JSON objects cannot hold.
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            k.serialize_json(out);
            out.push(',');
            v.serialize_json(out);
            out.push(']');
        }
        out.push(']');
    }
}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for std::collections::BTreeSet<T> {}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(to_json(&3u32), "3");
        assert_eq!(to_json(&-7i64), "-7");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&"a\"b"), "\"a\\\"b\"");
        assert_eq!(to_json(&Some(1u8)), "1");
        assert_eq!(to_json(&(None as Option<u8>)), "null");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&(1u8, "x")), "[1,\"x\"]");
        let m: std::collections::BTreeMap<u8, u8> = [(1, 2)].into_iter().collect();
        assert_eq!(to_json(&m), "[[1,2]]");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json(&f64::INFINITY), "null");
    }
}
