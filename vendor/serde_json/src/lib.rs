//! Offline stand-in for `serde_json`: just enough to emit JSON lines from
//! types implementing the vendored [`serde::Serialize`].

use std::fmt;

/// Serialization error. The stub serializer is infallible, so this is
/// never constructed; it exists so call sites can keep serde_json's
/// `Result`-shaped API.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn to_string_emits_json() {
        assert_eq!(super::to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
    }
}
