//! Offline stand-in for `criterion`, vendored because this workspace
//! builds without network access to crates.io.
//!
//! Mirrors the macro/type surface of `criterion 0.5` used by
//! `bench/benches/micro.rs` and reports mean wall-clock per iteration. No
//! statistics, outlier rejection or HTML reports — enough to eyeball hot
//! paths and to keep the bench target compiling in CI. Iteration counts
//! are deliberately small so `cargo test --benches` stays fast; set
//! `CRITERION_STUB_ITERS` for more samples.

use std::time::{Duration, Instant};

fn measured_iters() -> u64 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

/// What one iteration processes, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Hint for how setup output is batched; the stub runs per-iteration
/// setup regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Timing collector passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / per_iter * 1e9 / 1e6),
        Throughput::Bytes(n) => format!(" ({:.1} MB/s)", n as f64 / per_iter * 1e9 / 1e6),
    });
    println!(
        "bench {name:<40} {:>12.0} ns/iter{}",
        per_iter,
        rate.unwrap_or_default()
    );
}

/// Benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(measured_iters());
        f(&mut b);
        report(name, &b, None);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(measured_iters());
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Define `fn $group_name()` running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= measured_iters());
    }

    #[test]
    fn group_with_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
