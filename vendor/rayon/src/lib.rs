//! Offline stand-in for `rayon`, vendored because this workspace builds
//! without network access to crates.io.
//!
//! Implements the one idiom the workspace uses — `vec.into_par_iter()
//! .map(f).collect::<Vec<_>>()` — as an order-preserving parallel map on
//! `std::thread::scope`. Items are claimed from an atomic cursor (dynamic
//! load balancing, like rayon with small jobs) and results land in their
//! input slot, so collection order always equals input order no matter how
//! the OS schedules the workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for parallel maps.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// Order-preserving parallel map: the output index of each result equals
/// the input index of its item.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|t| Mutex::new((Some(t), None)))
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .0
                    .take()
                    .expect("item claimed once");
                let result = f(item);
                slots[i].lock().unwrap().1 = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker panics propagate through scope")
                .1
                .expect("every slot filled")
        })
        .collect()
}

pub mod iter {
    /// Entry point mirroring `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        fn into_par_iter(self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        fn into_par_iter(self) -> ParIter<&'a T> {
            self.as_slice().into_par_iter()
        }
    }

    /// Mirror of `rayon::iter::IntoParallelRefIterator`: `.par_iter()`
    /// on a borrowed collection.
    pub trait IntoParallelRefIterator<'a> {
        type Item: Send;
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            self.into_par_iter()
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            self.as_slice().into_par_iter()
        }
    }

    /// A parallel iterator over owned items.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        pub fn map<F>(self, f: F) -> ParMap<T, F> {
            ParMap {
                items: self.items,
                f,
            }
        }

        pub fn len(&self) -> usize {
            self.items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    /// A mapped parallel iterator; `collect` runs the map across threads.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, F> ParMap<T, F> {
        pub fn collect<C, R>(self) -> C
        where
            T: Send,
            R: Send,
            F: Fn(T) -> R + Sync,
            C: FromIterator<R>,
        {
            super::parallel_map(self.items, self.f)
                .into_iter()
                .collect()
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = vec![];
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn captures_environment() {
        let offset = 7usize;
        let out: Vec<usize> = vec![1, 2, 3].into_par_iter().map(|x| x + offset).collect();
        assert_eq!(out, vec![8, 9, 10]);
    }
}
