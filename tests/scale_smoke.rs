//! Thousand-rank smoke: the hot-path engine overhaul (slab-heap queue,
//! ring-buffer inboxes, flight slab, memoized pricing) must keep digests
//! bit-for-bit stable at the scale the paper's experiments need.
//!
//! A 1024-rank stencil runs protocol-free (the reference) and under HydEE
//! with 64 clusters of **16 ranks each** (the Table-I-style clustered
//! configuration); HydEE is transparent to the application, so every
//! per-rank state digest must match the reference exactly.

use scenario::{ClusterStrategy, Executor, ProtocolSpec, ScenarioSpec};
use workloads::WorkloadSpec;

fn stencil_1024() -> WorkloadSpec {
    WorkloadSpec::Stencil {
        n_ranks: 1024,
        iterations: 5,
        face_bytes: 1024,
        compute_us: 10,
        wildcard_recv: false,
    }
}

#[test]
fn stencil_1024_digests_match_16_rank_per_cluster_reference() {
    let reference = Executor::run_one(&ScenarioSpec::new(
        stencil_1024(),
        ProtocolSpec::Native,
        ClusterStrategy::Single,
    ));
    assert!(reference.completed, "reference: {}", reference.status);
    assert_eq!(reference.n_ranks, 1024);

    let clustered = Executor::run_one(&ScenarioSpec::new(
        stencil_1024(),
        ProtocolSpec::hydee(),
        ClusterStrategy::Blocks(64),
    ));
    assert!(clustered.completed, "clustered: {}", clustered.status);
    assert_eq!(clustered.n_clusters, 64, "64 clusters x 16 ranks");
    assert!(
        clustered.trace_consistent,
        "{} oracle violations",
        clustered.trace_violations
    );

    assert_eq!(
        reference.digest, clustered.digest,
        "HydEE must be transparent: clustered digests diverged from the \
         protocol-free reference at 1024 ranks"
    );
}

#[test]
fn stencil_1024_is_reproducible_across_runs() {
    let spec = ScenarioSpec::new(
        stencil_1024(),
        ProtocolSpec::hydee(),
        ClusterStrategy::Blocks(64),
    );
    let a = Executor::run_one(&spec);
    let b = Executor::run_one(&spec);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.makespan_ps, b.makespan_ps);
    assert_eq!(a.metrics.events, b.metrics.events);
}
