//! Recorder neutrality: telemetry is an *observer*. Attaching a full
//! recorder stack (span tracing + time-series sampling) to any protocol
//! under any failure regime and checkpoint policy must leave every
//! observable of the run — digests, containment integers, every
//! `Metrics` field, the whole `RunRecord` — bit-for-bit identical to the
//! untraced run. The comparison goes through the serialized record so a
//! future field can't silently escape the property.

use det_sim::SimDuration;
use proptest::prelude::*;
use scenario::{
    CheckpointPolicySpec, ClusterStrategy, Executor, FailureModelSpec, ProtocolSpec, ScenarioSpec,
    StorageSpec,
};
use telemetry::{Fanout, Sampler, SpanRecorder};
use workloads::WorkloadSpec;

fn protocol(idx: u8, ckpt_ms: u64) -> ProtocolSpec {
    let checkpoint = if ckpt_ms == 0 {
        CheckpointPolicySpec::None
    } else {
        CheckpointPolicySpec::periodic(ckpt_ms)
    };
    let image_bytes = 1 << 16;
    let storage = StorageSpec::Default;
    match idx % 3 {
        0 => ProtocolSpec::Hydee {
            checkpoint,
            image_bytes,
            storage,
            gc: true,
        },
        1 => ProtocolSpec::Coordinated {
            checkpoint,
            image_bytes,
            storage,
        },
        _ => ProtocolSpec::EventLogged {
            checkpoint,
            image_bytes,
            storage,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    #[test]
    fn recorders_never_change_the_record(
        proto in 0u8..3,
        ckpt_ms in 0u64..4,
        seed in 1u64..1024,
        k in 1usize..5,
        n_ranks in 4usize..10,
    ) {
        let mut spec = ScenarioSpec::new(
            WorkloadSpec::Stencil {
                n_ranks,
                iterations: 8,
                face_bytes: 2048,
                compute_us: 50,
                wildcard_recv: false,
            },
            protocol(proto, ckpt_ms),
            ClusterStrategy::Blocks(k),
        );
        // Seed-driven stochastic failures: some cases stay clean, some
        // fail mid-run, exercising rollback/replay under tracing.
        spec.failure_model = FailureModelSpec::Poisson {
            mtbf_ms: 4,
            seed,
            max_failures: 2,
        };

        let plain = Executor::run_one(&spec);
        prop_assert!(plain.completed, "untraced run: {}", plain.status);

        let (span_rec, trace) = SpanRecorder::new();
        let (sampler, samples) = Sampler::new(SimDuration::from_us(50));
        let fanout = Fanout::new()
            .push(Box::new(span_rec))
            .push(Box::new(sampler));
        let traced = Executor::run_one_with_recorder(&spec, Some(Box::new(fanout)));

        // The headline golden values, stated explicitly…
        prop_assert_eq!(plain.digest, traced.digest, "digest drift");
        prop_assert_eq!(plain.makespan_ps, traced.makespan_ps);
        prop_assert_eq!(plain.metrics.failures, traced.metrics.failures);
        prop_assert_eq!(
            plain.metrics.ranks_rolled_back,
            traced.metrics.ranks_rolled_back
        );
        // …and the whole record, so every present and future Metrics
        // field is covered bit-for-bit.
        prop_assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&traced).unwrap(),
            "RunRecord diverged under tracing"
        );

        // While we're here: the artefacts the recorders produced must be
        // structurally valid for every sampled point of the matrix.
        let json = trace.to_chrome_json();
        let validated = telemetry::validate_chrome_trace(&json);
        prop_assert!(validated.is_ok(), "invalid trace: {:?}", validated.err());
        for row in samples.rows() {
            let parsed = telemetry::json::parse(&row.to_json());
            prop_assert!(parsed.is_ok(), "invalid sample row: {:?}", parsed.err());
        }
    }
}
