//! Cross-crate determinism and protocol-equivalence guarantees.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{ClusterMap, NullProtocol, Rank, Sim, SimConfig};
use protocols::{CoordinatedConfig, DeterminantCost, EventLogged, GlobalCoordinated};
use workloads::{stencil_2d, NasBench, NasConfig, StencilConfig};

fn cg16() -> mps_sim::Application {
    NasBench::CG.build(&NasConfig {
        n_ranks: 16,
        iterations: 6,
        size_scale: 1e-3,
        compute_per_iter: SimDuration::from_us(50),
    })
}

#[test]
fn repeated_runs_are_bit_identical() {
    let reports: Vec<_> = (0..3)
        .map(|_| {
            Sim::new(
                cg16(),
                SimConfig::default(),
                Hydee::new(HydeeConfig::new(ClusterMap::blocks(16, 4))),
            )
            .run()
        })
        .collect();
    for r in &reports {
        assert!(r.completed());
    }
    assert_eq!(reports[0].digests, reports[1].digests);
    assert_eq!(reports[1].digests, reports[2].digests);
    assert_eq!(reports[0].makespan, reports[1].makespan);
    assert_eq!(reports[0].metrics.events, reports[2].metrics.events);
    assert_eq!(reports[0].metrics.wire_bytes, reports[1].metrics.wire_bytes);
}

#[test]
fn recovered_runs_are_bit_identical_too() {
    let run = || {
        let mut cfg = HydeeConfig::new(ClusterMap::blocks(16, 4));
        cfg.restart_latency = SimDuration::from_us(20);
        let mut sim = Sim::new(cg16(), SimConfig::default(), Hydee::new(cfg));
        sim.inject_failure(SimTime::from_us(400), vec![Rank(6)]);
        sim.run()
    };
    let a = run();
    let b = run();
    assert!(a.completed() && b.completed());
    assert_eq!(a.digests, b.digests);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.metrics.suppressed_sends, b.metrics.suppressed_sends);
    assert_eq!(a.metrics.replayed_messages, b.metrics.replayed_messages);
}

#[test]
fn all_protocols_compute_the_same_application_result() {
    // Fault-tolerance protocols must be transparent: the application's
    // final state is identical whichever protocol runs beneath it.
    let native = Sim::new(cg16(), SimConfig::default(), NullProtocol).run();
    let hydee = Sim::new(
        cg16(),
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(ClusterMap::blocks(16, 4))),
    )
    .run();
    let coord = Sim::new(
        cg16(),
        SimConfig::default(),
        GlobalCoordinated::new(CoordinatedConfig::default()),
    )
    .run();
    let logged = Sim::new(
        cg16(),
        SimConfig::default(),
        EventLogged::new(
            Hydee::new(HydeeConfig::new(ClusterMap::per_rank(16))),
            DeterminantCost::default(),
        ),
    )
    .run();
    for r in [&native, &hydee, &coord, &logged] {
        assert!(r.completed());
    }
    assert_eq!(native.digests, hydee.digests);
    assert_eq!(native.digests, coord.digests);
    assert_eq!(native.digests, logged.digests);
}

#[test]
fn protocol_overheads_are_ordered() {
    // native <= hydee(clustered) <= full logging + determinants, on a
    // communication-heavy workload.
    let cfg = StencilConfig {
        n_ranks: 16,
        iterations: 80,
        face_bytes: 2 << 10,
        compute_per_iter: SimDuration::from_us(20),
        wildcard_recv: false,
    };
    let native = Sim::new(stencil_2d(&cfg), SimConfig::default(), NullProtocol).run();
    let hydee = Sim::new(
        stencil_2d(&cfg),
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(ClusterMap::blocks(16, 4))),
    )
    .run();
    let full = Sim::new(
        stencil_2d(&cfg),
        SimConfig::default(),
        EventLogged::new(
            Hydee::new(HydeeConfig::new(ClusterMap::per_rank(16))),
            DeterminantCost::default(),
        ),
    )
    .run();
    assert!(native.completed() && hydee.completed() && full.completed());
    assert!(
        native.makespan <= hydee.makespan,
        "native {} vs hydee {}",
        native.makespan,
        hydee.makespan
    );
    assert!(
        hydee.makespan < full.makespan,
        "hydee {} vs full+events {}",
        hydee.makespan,
        full.makespan
    );
    // And the overhead is small in relative terms (paper: ~2%).
    let overhead = hydee.makespan.as_secs_f64() / native.makespan.as_secs_f64() - 1.0;
    assert!(overhead < 0.10, "hydee overhead {overhead:.3} too large");
}

#[test]
fn null_protocol_equals_native_wire_traffic() {
    let report = Sim::new(cg16(), SimConfig::default(), NullProtocol).run();
    assert!(report.completed());
    assert_eq!(report.metrics.wire_bytes, report.metrics.app_bytes);
    assert_eq!(report.metrics.ctl_messages, 0);
    assert_eq!(report.metrics.logged_bytes_cumulative, 0);
}
