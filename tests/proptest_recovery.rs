//! Property-based failure-injection testing: random send-deterministic
//! applications, random clusterings, random failure times and victims —
//! HydEE must always terminate, keep the trace oracle clean, reproduce the
//! golden digests, and roll back exactly the failed clusters.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{Application, ClusterMap, Rank, Sim, SimConfig, Tag};
use proptest::prelude::*;

/// One communication round: a set of directed edges. Ranks post all their
/// sends before their receives, so any round list yields a deadlock-free,
/// balanced application.
#[derive(Debug, Clone)]
struct RoundPlan {
    edges: Vec<(u8, u8, u16)>, // (src, dst, kilobytes-ish size seed)
}

fn arb_rounds(n_ranks: u8, max_rounds: usize) -> impl Strategy<Value = Vec<RoundPlan>> {
    let edge = (0..n_ranks, 0..n_ranks, 1u16..64).prop_filter_map("no self edges", |(a, b, s)| {
        if a == b {
            None
        } else {
            Some((a, b, s))
        }
    });
    prop::collection::vec(
        prop::collection::vec(edge, 1..5).prop_map(|edges| RoundPlan { edges }),
        1..max_rounds,
    )
}

fn build_app(n_ranks: u8, rounds: &[RoundPlan]) -> Application {
    let mut app = Application::new(n_ranks as usize);
    for (i, round) in rounds.iter().enumerate() {
        let tag = Tag(i as u32);
        for &(src, _, _) in &round.edges {
            // Small jitter so schedules vary between ranks.
            app.rank_mut(Rank(src as u32))
                .compute(SimDuration::from_ns(500 * (src as u64 + 1)));
        }
        for &(src, dst, size) in &round.edges {
            app.rank_mut(Rank(src as u32))
                .send(Rank(dst as u32), 64 * size as u64, tag);
        }
        for &(src, dst, _) in &round.edges {
            app.rank_mut(Rank(dst as u32)).recv(Rank(src as u32), tag);
        }
    }
    app
}

fn cluster_map(n_ranks: u8, k: u8) -> ClusterMap {
    ClusterMap::blocks(n_ranks as usize, k as usize)
}

fn hydee_cfg(map: ClusterMap) -> HydeeConfig {
    let mut cfg = HydeeConfig::new(map).with_image_bytes(1 << 16);
    cfg.restart_latency = SimDuration::from_us(20);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_apps_recover_exactly(
        rounds in arb_rounds(8, 20),
        k in 1u8..=8,
        victim in 0u8..8,
        fail_frac in 0.0f64..1.2,
    ) {
        let map = cluster_map(8, k);
        let golden = Sim::new(
            build_app(8, &rounds),
            SimConfig::default(),
            Hydee::new(hydee_cfg(map.clone())),
        )
        .run();
        prop_assert!(golden.completed(), "golden: {:?}", golden.status);

        let fail_at = SimTime::from_ps(
            (golden.makespan.as_ps() as f64 * fail_frac) as u64 + 1,
        );
        let mut sim = Sim::new(
            build_app(8, &rounds),
            SimConfig::default(),
            Hydee::new(hydee_cfg(map.clone())),
        );
        sim.inject_failure(fail_at, vec![Rank(victim as u32)]);
        let report = sim.run();
        prop_assert!(report.completed(), "failed run: {:?}", report.status);
        prop_assert!(
            report.trace.is_consistent(),
            "oracle: {:?}",
            report.trace.violations
        );
        prop_assert_eq!(&report.digests, &golden.digests, "state diverged");
        // Either the failure landed inside the run (cluster rolled back) or
        // after completion (nothing happened).
        let cluster_size = map
            .members(map.cluster_of(Rank(victim as u32)))
            .len() as u64;
        prop_assert!(
            report.metrics.ranks_rolled_back == cluster_size
                || report.metrics.ranks_rolled_back == 0,
            "rolled {} expected {} or 0",
            report.metrics.ranks_rolled_back,
            cluster_size
        );
    }

    #[test]
    fn random_concurrent_failures_recover(
        rounds in arb_rounds(8, 14),
        victims in prop::collection::btree_set(0u8..8, 1..=3),
        fail_us in 10u64..1500,
    ) {
        let map = cluster_map(8, 4); // clusters of 2
        let golden = Sim::new(
            build_app(8, &rounds),
            SimConfig::default(),
            Hydee::new(hydee_cfg(map.clone())),
        )
        .run();
        prop_assert!(golden.completed());
        let mut sim = Sim::new(
            build_app(8, &rounds),
            SimConfig::default(),
            Hydee::new(hydee_cfg(map)),
        );
        sim.inject_failure(
            SimTime::from_us(fail_us),
            victims.iter().map(|&v| Rank(v as u32)).collect(),
        );
        let report = sim.run();
        prop_assert!(report.completed(), "{:?}", report.status);
        prop_assert!(
            report.trace.is_consistent(),
            "oracle: {:?}",
            report.trace.violations
        );
        prop_assert_eq!(&report.digests, &golden.digests);
    }

    #[test]
    fn random_apps_with_checkpoints_recover(
        rounds in arb_rounds(6, 16),
        victim in 0u8..6,
        ckpt_us in 50u64..400,
        fail_us in 100u64..2000,
    ) {
        let map = cluster_map(6, 3);
        let mut cfg = hydee_cfg(map.clone());
        cfg.first_checkpoint = SimTime::from_us(ckpt_us);
        cfg.checkpoint_stagger = SimDuration::from_us(7);
        let cfg = cfg.with_checkpoints(SimDuration::from_us(ckpt_us));
        let golden = Sim::new(
            build_app(6, &rounds),
            SimConfig::default(),
            Hydee::new(cfg.clone_for_test()),
        )
        .run();
        prop_assert!(golden.completed());
        let mut sim = Sim::new(
            build_app(6, &rounds),
            SimConfig::default(),
            Hydee::new(cfg),
        );
        sim.inject_failure(SimTime::from_us(fail_us), vec![Rank(victim as u32)]);
        let report = sim.run();
        prop_assert!(report.completed(), "{:?}", report.status);
        prop_assert!(
            report.trace.is_consistent(),
            "oracle: {:?}",
            report.trace.violations
        );
        prop_assert_eq!(&report.digests, &golden.digests);
    }
}

/// Helper so the checkpointed config can be used for both runs.
trait CloneForTest {
    fn clone_for_test(&self) -> Self;
}

impl CloneForTest for HydeeConfig {
    fn clone_for_test(&self) -> Self {
        self.clone()
    }
}
