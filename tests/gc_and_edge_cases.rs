//! Garbage collection safety and engine/protocol edge cases.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{Application, ClusterMap, Rank, Sim, SimConfig, Tag};

fn chatter(n: u32, rounds: usize, bytes: u64) -> Application {
    // Ring with both directions so every channel carries traffic.
    let mut app = Application::new(n as usize);
    for round in 0..rounds {
        let tag = Tag((round % 3) as u32);
        for r in 0..n {
            app.rank_mut(Rank(r)).send(Rank((r + 1) % n), bytes, tag);
            app.rank_mut(Rank(r))
                .send(Rank((r + n - 1) % n), bytes, tag);
        }
        for r in 0..n {
            app.rank_mut(Rank(r)).recv(Rank((r + n - 1) % n), tag);
            app.rank_mut(Rank(r)).recv(Rank((r + 1) % n), tag);
        }
    }
    app
}

fn cfg_with_gc(gc: bool) -> HydeeConfig {
    let mut cfg = HydeeConfig::new(ClusterMap::blocks(8, 4))
        .with_image_bytes(1 << 16)
        .with_checkpoints(SimDuration::from_us(150));
    cfg.first_checkpoint = SimTime::from_us(150);
    cfg.checkpoint_stagger = SimDuration::from_us(20);
    cfg.restart_latency = SimDuration::from_us(20);
    if !gc {
        cfg = cfg.without_gc();
    }
    cfg
}

/// The critical GC safety property: pruning a sender's log on a
/// checkpoint acknowledgement must never discard a message that a later
/// rollback still needs. Sweep failure times across many checkpoint/GC
/// epochs; every recovery must still be exact.
#[test]
fn gc_never_prunes_messages_a_rollback_needs() {
    let golden = Sim::new(
        chatter(8, 300, 2048),
        SimConfig::default(),
        Hydee::new(cfg_with_gc(true)),
    )
    .run();
    assert!(golden.completed());
    assert!(
        golden.metrics.gc_reclaimed_messages > 0,
        "test vacuous: GC never fired"
    );
    for us in [200u64, 500, 800, 1200, 1800, 2500] {
        let mut sim = Sim::new(
            chatter(8, 300, 2048),
            SimConfig::default(),
            Hydee::new(cfg_with_gc(true)),
        );
        sim.inject_failure(SimTime::from_us(us), vec![Rank(4)]);
        let report = sim.run();
        assert!(report.completed(), "@{us}us: {:?}", report.status);
        assert!(
            report.trace.is_consistent(),
            "@{us}us: {:?}",
            report.trace.violations
        );
        assert_eq!(report.digests, golden.digests, "@{us}us");
    }
}

#[test]
fn gc_reclaims_what_no_gc_keeps() {
    let with_gc = Sim::new(
        chatter(8, 300, 2048),
        SimConfig::default(),
        Hydee::new(cfg_with_gc(true)),
    )
    .run();
    let without = Sim::new(
        chatter(8, 300, 2048),
        SimConfig::default(),
        Hydee::new(cfg_with_gc(false)),
    )
    .run();
    assert!(with_gc.completed() && without.completed());
    assert_eq!(
        with_gc.metrics.logged_bytes_cumulative,
        without.metrics.logged_bytes_cumulative
    );
    assert!(with_gc.metrics.gc_reclaimed_bytes > 0);
    assert_eq!(without.metrics.gc_reclaimed_bytes, 0);
    assert!(
        with_gc.metrics.logged_bytes_peak < without.metrics.logged_bytes_peak,
        "GC must lower the peak: {} vs {}",
        with_gc.metrics.logged_bytes_peak,
        without.metrics.logged_bytes_peak
    );
}

#[test]
fn whole_cluster_fails_at_once() {
    let golden = Sim::new(
        chatter(8, 100, 1024),
        SimConfig::default(),
        Hydee::new(cfg_with_gc(true)),
    )
    .run();
    let mut sim = Sim::new(
        chatter(8, 100, 1024),
        SimConfig::default(),
        Hydee::new(cfg_with_gc(true)),
    );
    // Both members of cluster {2,3} die together.
    sim.inject_failure(SimTime::from_us(400), vec![Rank(2), Rank(3)]);
    let report = sim.run();
    assert!(report.completed(), "{:?}", report.status);
    assert_eq!(report.digests, golden.digests);
    assert_eq!(report.metrics.ranks_rolled_back, 2);
}

#[test]
fn failure_at_time_zero() {
    // Rollback before anything executed: recovery from the initial
    // checkpoint with no orphans and no logs.
    let golden = Sim::new(
        chatter(8, 50, 512),
        SimConfig::default(),
        Hydee::new(cfg_with_gc(true)),
    )
    .run();
    let mut sim = Sim::new(
        chatter(8, 50, 512),
        SimConfig::default(),
        Hydee::new(cfg_with_gc(true)),
    );
    sim.inject_failure(SimTime::from_ps(1), vec![Rank(0)]);
    let report = sim.run();
    assert!(report.completed(), "{:?}", report.status);
    assert_eq!(report.digests, golden.digests);
}

#[test]
fn single_rank_cluster_failure() {
    // A cluster of one: failure containment degenerates to pure message
    // logging for that rank.
    let clusters = ClusterMap::new(vec![0, 1, 1, 1]);
    let mut app = Application::new(4);
    for round in 0..60 {
        let tag = Tag(round % 2);
        app.rank_mut(Rank(0)).send(Rank(1), 4096, tag);
        app.rank_mut(Rank(1)).recv(Rank(0), tag);
        app.rank_mut(Rank(1)).send(Rank(2), 512, tag);
        app.rank_mut(Rank(2)).recv(Rank(1), tag);
        app.rank_mut(Rank(2)).send(Rank(0), 4096, tag);
        app.rank_mut(Rank(0)).recv(Rank(2), tag);
    }
    let mut cfg = HydeeConfig::new(clusters);
    cfg.restart_latency = SimDuration::from_us(20);
    let golden = {
        let c = cfg.clone();
        Sim::new(app.clone(), SimConfig::default(), Hydee::new(c)).run()
    };
    let mut sim = Sim::new(app, SimConfig::default(), Hydee::new(cfg));
    sim.inject_failure(SimTime::from_us(300), vec![Rank(0)]);
    let report = sim.run();
    assert!(report.completed(), "{:?}", report.status);
    assert_eq!(report.digests, golden.digests);
    assert_eq!(report.metrics.ranks_rolled_back, 1, "perfect containment");
}

#[test]
fn empty_and_compute_only_programs() {
    // Ranks with nothing to do (or compute only) coexist with failures.
    let mut app = Application::new(4);
    app.rank_mut(Rank(1)).compute(SimDuration::from_ms(1));
    for _ in 0..40 {
        app.rank_mut(Rank(2)).send(Rank(3), 1024, Tag(0));
        app.rank_mut(Rank(3)).recv(Rank(2), Tag(0));
        app.rank_mut(Rank(3)).send(Rank(2), 1024, Tag(0));
        app.rank_mut(Rank(2)).recv(Rank(3), Tag(0));
    }
    let clusters = ClusterMap::new(vec![0, 0, 1, 1]);
    let mut cfg = HydeeConfig::new(clusters);
    cfg.restart_latency = SimDuration::from_us(10);
    let golden = {
        let c = cfg.clone();
        Sim::new(app.clone(), SimConfig::default(), Hydee::new(c)).run()
    };
    let mut sim = Sim::new(app, SimConfig::default(), Hydee::new(cfg));
    sim.inject_failure(SimTime::from_us(100), vec![Rank(3)]);
    let report = sim.run();
    assert!(report.completed(), "{:?}", report.status);
    assert_eq!(report.digests, golden.digests);
    assert_eq!(report.metrics.ranks_rolled_back, 2);
}

#[test]
fn large_cluster_count_and_tiny_messages() {
    // Stress matching with 1-byte messages across 8 singleton clusters.
    let mut app = Application::new(8);
    for round in 0..50 {
        let tag = Tag(round % 4);
        for r in 0..8u32 {
            app.rank_mut(Rank(r)).send(Rank((r + 3) % 8), 1, tag);
        }
        for r in 0..8u32 {
            app.rank_mut(Rank(r)).recv(Rank((r + 5) % 8), tag);
        }
    }
    let mut cfg = HydeeConfig::new(ClusterMap::per_rank(8));
    cfg.restart_latency = SimDuration::from_us(10);
    let golden = {
        let c = cfg.clone();
        Sim::new(app.clone(), SimConfig::default(), Hydee::new(c)).run()
    };
    let mut sim = Sim::new(app, SimConfig::default(), Hydee::new(cfg));
    sim.inject_failure(SimTime::from_us(100), vec![Rank(6)]);
    let report = sim.run();
    assert!(report.completed(), "{:?}", report.status);
    assert_eq!(report.digests, golden.digests);
    assert_eq!(report.metrics.ranks_rolled_back, 1);
}
