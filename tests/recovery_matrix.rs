//! Systematic failure-injection matrix across workloads, failure times,
//! failure multiplicities and checkpoint regimes.
//!
//! Every cell asserts the full HydEE correctness contract:
//! * the run completes (Theorem 2: deadlock-free recovery),
//! * zero trace-oracle violations (send-determinism respected, every
//!   replayed/suppressed message byte-identical to its original),
//! * final per-rank digests equal the failure-free golden run (the
//!   recovered execution is *the same* execution),
//! * containment: exactly the failed ranks' clusters rolled back.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{Application, ClusterMap, Rank, RunReport, Sim, SimConfig, Tag};
use workloads::{stencil_2d, NasBench, NasConfig, StencilConfig};

fn run_hydee(
    app: Application,
    clusters: ClusterMap,
    ckpt: Option<SimDuration>,
    failures: Vec<(SimTime, Vec<Rank>)>,
) -> RunReport {
    let mut cfg = HydeeConfig::new(clusters).with_image_bytes(1 << 18);
    cfg.first_checkpoint = SimTime::from_us(300);
    cfg.checkpoint_stagger = SimDuration::from_us(100);
    cfg.restart_latency = SimDuration::from_us(100);
    if let Some(interval) = ckpt {
        cfg = cfg.with_checkpoints(interval);
    }
    let mut sim = Sim::new(app, SimConfig::default(), Hydee::new(cfg));
    for (at, ranks) in failures {
        sim.inject_failure(at, ranks);
    }
    sim.run()
}

fn assert_recovered(name: &str, golden: &RunReport, report: &RunReport, expect_rolled: u64) {
    assert!(report.completed(), "{name}: {:?}", report.status);
    assert!(
        report.trace.is_consistent(),
        "{name}: oracle violations {:?}",
        &report.trace.violations
    );
    assert_eq!(
        report.digests, golden.digests,
        "{name}: recovered state diverged from golden run"
    );
    assert_eq!(
        report.metrics.ranks_rolled_back, expect_rolled,
        "{name}: containment violated"
    );
    assert!(
        report.inbox_leftover.iter().all(|&l| l == 0),
        "{name}: leftover messages (duplicate deliveries): {:?}",
        report.inbox_leftover
    );
}

fn ring(n: u32, rounds: usize, bytes: u64) -> Application {
    let mut app = Application::new(n as usize);
    for round in 0..rounds {
        let tag = Tag((round % 3) as u32);
        for r in 0..n {
            app.rank_mut(Rank(r)).send(Rank((r + 1) % n), bytes, tag);
        }
        for r in 0..n {
            app.rank_mut(Rank(r)).recv(Rank((r + n - 1) % n), tag);
        }
    }
    app
}

#[test]
fn ring_failure_time_sweep() {
    let clusters = ClusterMap::blocks(8, 2);
    let golden = run_hydee(ring(8, 400, 4096), clusters.clone(), None, vec![]);
    assert!(golden.completed());
    for us in [1u64, 50, 150, 400, 900, 2000] {
        let report = run_hydee(
            ring(8, 400, 4096),
            clusters.clone(),
            None,
            vec![(SimTime::from_us(us), vec![Rank(2)])],
        );
        assert_recovered(&format!("ring@{us}us"), &golden, &report, 4);
    }
}

#[test]
fn ring_every_victim_recovers() {
    let clusters = ClusterMap::blocks(8, 4);
    let golden = run_hydee(ring(8, 80, 1024), clusters.clone(), None, vec![]);
    for victim in 0..8u32 {
        let report = run_hydee(
            ring(8, 80, 1024),
            clusters.clone(),
            None,
            vec![(SimTime::from_us(200), vec![Rank(victim)])],
        );
        assert_recovered(&format!("victim P{victim}"), &golden, &report, 2);
    }
}

#[test]
fn stencil_with_periodic_checkpoints() {
    let cfg = StencilConfig {
        n_ranks: 16,
        iterations: 60,
        face_bytes: 32 << 10,
        compute_per_iter: SimDuration::from_us(100),
        wildcard_recv: false,
    };
    let clusters = ClusterMap::blocks(16, 4);
    let golden = run_hydee(
        stencil_2d(&cfg),
        clusters.clone(),
        Some(SimDuration::from_ms(2)),
        vec![],
    );
    assert!(golden.completed());
    for ms in [1u64, 5, 9] {
        let report = run_hydee(
            stencil_2d(&cfg),
            clusters.clone(),
            Some(SimDuration::from_ms(2)),
            vec![(SimTime::from_ms(ms), vec![Rank(10)])],
        );
        assert_recovered(&format!("stencil@{ms}ms"), &golden, &report, 4);
    }
}

#[test]
fn stencil_wildcard_receives_recover() {
    // MPI_ANY_SOURCE receives + failure: the reception order differs on
    // replay, send-determinism keeps the outcome identical.
    let cfg = StencilConfig {
        n_ranks: 16,
        iterations: 40,
        face_bytes: 16 << 10,
        compute_per_iter: SimDuration::from_us(50),
        wildcard_recv: true,
    };
    let clusters = ClusterMap::blocks(16, 4);
    let golden = run_hydee(stencil_2d(&cfg), clusters.clone(), None, vec![]);
    let report = run_hydee(
        stencil_2d(&cfg),
        clusters.clone(),
        None,
        vec![(SimTime::from_us(700), vec![Rank(5)])],
    );
    assert_recovered("wildcard stencil", &golden, &report, 4);
}

#[test]
fn concurrent_failures_two_and_three_clusters() {
    let clusters = ClusterMap::blocks(12, 4); // clusters of 3
    let golden = run_hydee(ring(12, 90, 2048), clusters.clone(), None, vec![]);
    // Two clusters at once.
    let report = run_hydee(
        ring(12, 90, 2048),
        clusters.clone(),
        None,
        vec![(SimTime::from_us(300), vec![Rank(0), Rank(6)])],
    );
    assert_recovered("2 concurrent clusters", &golden, &report, 6);
    // Three clusters at once.
    let report = run_hydee(
        ring(12, 90, 2048),
        clusters.clone(),
        None,
        vec![(SimTime::from_us(300), vec![Rank(1), Rank(4), Rank(9)])],
    );
    assert_recovered("3 concurrent clusters", &golden, &report, 9);
    // Two failed ranks inside the SAME cluster: one rollback of 3.
    let report = run_hydee(
        ring(12, 90, 2048),
        clusters,
        None,
        vec![(SimTime::from_us(300), vec![Rank(3), Rank(5)])],
    );
    assert_recovered("2 ranks same cluster", &golden, &report, 3);
}

#[test]
fn sequential_failures_after_recovery() {
    let clusters = ClusterMap::blocks(8, 2);
    let golden = run_hydee(ring(8, 400, 2048), clusters.clone(), None, vec![]);
    // First failure early, second long after the first recovery finished
    // (recovery orchestration completes in well under a millisecond of
    // simulated time here).
    let report = run_hydee(
        ring(8, 400, 2048),
        clusters,
        None,
        vec![
            (SimTime::from_us(200), vec![Rank(1)]),
            (SimTime::from_us(1500), vec![Rank(6)]),
        ],
    );
    assert!(report.completed(), "{:?}", report.status);
    assert!(
        report.trace.is_consistent(),
        "{:?}",
        report.trace.violations
    );
    assert_eq!(report.digests, golden.digests);
    assert_eq!(
        report.metrics.ranks_rolled_back, 8,
        "4 + 4 across two failures"
    );
    assert_eq!(report.metrics.failures, 2);
}

#[test]
fn nas_cg_small_recovers() {
    let cfg = NasConfig {
        n_ranks: 16,
        iterations: 8,
        size_scale: 1e-3,
        compute_per_iter: SimDuration::from_us(100),
    };
    let clusters = ClusterMap::blocks(16, 4); // one cluster per grid row
    let golden = run_hydee(NasBench::CG.build(&cfg), clusters.clone(), None, vec![]);
    let report = run_hydee(
        NasBench::CG.build(&cfg),
        clusters,
        None,
        vec![(SimTime::from_ms(1), vec![Rank(13)])],
    );
    assert_recovered("CG 16", &golden, &report, 4);
}

#[test]
fn nas_bt_and_mg_small_recover() {
    for bench in [NasBench::BT, NasBench::MG] {
        let cfg = NasConfig {
            n_ranks: 16,
            iterations: 6,
            size_scale: 1e-3,
            compute_per_iter: SimDuration::from_us(100),
        };
        let clusters = ClusterMap::blocks(16, 4);
        let golden = run_hydee(bench.build(&cfg), clusters.clone(), None, vec![]);
        let report = run_hydee(
            bench.build(&cfg),
            clusters,
            None,
            vec![(SimTime::from_us(300), vec![Rank(7)])],
        );
        assert_recovered(bench.name(), &golden, &report, 4);
    }
}

#[test]
fn failure_of_done_rank_recovers() {
    // Rank finishes its program, then its cluster-mate's failure drags it
    // back: the Done rank must revive, re-execute, and finish again.
    let mut app = Application::new(4);
    // P0 sends one early message then is done; others keep chatting.
    app.rank_mut(Rank(0)).send(Rank(1), 1024, Tag(0));
    app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
    for _ in 0..100 {
        app.rank_mut(Rank(1)).send(Rank(2), 1024, Tag(1));
        app.rank_mut(Rank(2)).recv(Rank(1), Tag(1));
        app.rank_mut(Rank(2)).send(Rank(3), 1024, Tag(1));
        app.rank_mut(Rank(3)).recv(Rank(2), Tag(1));
        app.rank_mut(Rank(3)).send(Rank(1), 1024, Tag(1));
        app.rank_mut(Rank(1)).recv(Rank(3), Tag(1));
    }
    let clusters = ClusterMap::new(vec![0, 0, 1, 1]);
    let golden = {
        let sim = Sim::new(
            app.clone(),
            SimConfig::default(),
            Hydee::new(HydeeConfig::new(clusters.clone())),
        );
        sim.run()
    };
    let mut sim = Sim::new(
        app,
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(clusters)),
    );
    // By 500us P0 is long done; failing P1 rolls the {0,1} cluster back.
    sim.inject_failure(SimTime::from_us(500), vec![Rank(1)]);
    let report = sim.run();
    assert!(report.completed(), "{:?}", report.status);
    assert_eq!(report.digests, golden.digests);
    assert_eq!(report.metrics.ranks_rolled_back, 2);
}
