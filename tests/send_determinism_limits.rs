//! Where HydEE's assumption is load-bearing: non-send-deterministic
//! applications.
//!
//! The paper (§II-B, citing the send-determinism study) notes that
//! master/worker applications are the common pattern violating
//! send-determinism. Under `DetMode::OrderSensitive` a rank's outgoing
//! payloads depend on its delivery *order*, so a recovered execution may
//! emit different messages than the original — exactly what HydEE's
//! suppression (which silently assumes re-emissions are identical) cannot
//! tolerate. The engine's trace oracle exists to catch this.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{ClusterMap, DetMode, Rank, Sim, SimConfig};
use protocols::{CoordinatedConfig, GlobalCoordinated};
use workloads::{master_worker, MasterWorkerConfig};

fn mw_config() -> MasterWorkerConfig {
    MasterWorkerConfig {
        n_ranks: 8,
        tasks_per_worker: 12,
        task_bytes: 2 << 10,
        result_bytes: 8 << 10,
        work_base: SimDuration::from_us(80),
    }
}

fn sim_config(mode: DetMode) -> SimConfig {
    SimConfig {
        det_mode: mode,
        ..Default::default()
    }
}

#[test]
fn order_sensitive_master_worker_trips_the_oracle_under_hydee() {
    // Failure-free: fine even when order-sensitive (no re-execution, no
    // re-emission to compare).
    let clean = Sim::new(
        master_worker(&mw_config()),
        sim_config(DetMode::OrderSensitive),
        Hydee::new(HydeeConfig::new(ClusterMap::blocks(8, 4))),
    )
    .run();
    assert!(clean.completed());
    assert!(clean.trace.is_consistent());

    // With a failure, the master's re-executed sends depend on the replay
    // delivery order. Either the oracle reports a send-determinism
    // violation, or (if the replay order happened to match) the run is
    // clean — but across victims at least one must trip.
    let mut violations_seen = 0;
    for victim in 0..8u32 {
        let mut cfg = HydeeConfig::new(ClusterMap::blocks(8, 4));
        cfg.restart_latency = SimDuration::from_us(20);
        let mut sim = Sim::new(
            master_worker(&mw_config()),
            sim_config(DetMode::OrderSensitive),
            Hydee::new(cfg),
        );
        sim.inject_failure(SimTime::from_us(700), vec![Rank(victim)]);
        let report = sim.run();
        // The protocol may still terminate (suppression hides the
        // difference from receivers), but the oracle must flag any
        // re-emission whose content differs.
        if !report.trace.is_consistent() {
            violations_seen += 1;
        }
    }
    assert!(
        violations_seen > 0,
        "an order-sensitive app recovering under HydEE must eventually \
         produce a detectable send-determinism violation"
    );
}

#[test]
fn send_deterministic_master_worker_is_safe_under_hydee() {
    // The same wildcard-receiving pattern, but with payloads independent
    // of delivery order (the send-deterministic-with-ANY_SOURCE case of
    // §II-C): recovery is exact for every victim.
    let golden = Sim::new(
        master_worker(&mw_config()),
        sim_config(DetMode::SendDeterministic),
        Hydee::new(HydeeConfig::new(ClusterMap::blocks(8, 4))),
    )
    .run();
    assert!(golden.completed());
    for victim in 0..8u32 {
        let mut cfg = HydeeConfig::new(ClusterMap::blocks(8, 4));
        cfg.restart_latency = SimDuration::from_us(20);
        let mut sim = Sim::new(
            master_worker(&mw_config()),
            sim_config(DetMode::SendDeterministic),
            Hydee::new(cfg),
        );
        sim.inject_failure(SimTime::from_us(700), vec![Rank(victim)]);
        let report = sim.run();
        assert!(report.completed(), "victim {victim}: {:?}", report.status);
        assert!(
            report.trace.is_consistent(),
            "victim {victim}: {:?}",
            report.trace.violations
        );
        assert_eq!(report.digests, golden.digests, "victim {victim}");
    }
}

#[test]
fn coordinated_checkpointing_tolerates_order_sensitivity() {
    // Global coordinated checkpointing assumes nothing about determinism:
    // rolling everyone back to a consistent cut is correct even for an
    // order-sensitive app (the re-execution is a different but valid run).
    let cfg = CoordinatedConfig {
        restart_latency: SimDuration::from_us(20),
        ..Default::default()
    };
    let mut sim = Sim::new(
        master_worker(&mw_config()),
        sim_config(DetMode::OrderSensitive),
        GlobalCoordinated::new(cfg),
    );
    sim.inject_failure(SimTime::from_us(700), vec![Rank(3)]);
    let report = sim.run();
    assert!(report.completed(), "{:?}", report.status);
    // All ranks rolled back: no containment, but no correctness caveat.
    assert_eq!(report.metrics.ranks_rolled_back, 8);
}
