//! Scenario tests mirroring the paper's running example (§III, Figures 3
//! and 4) and its lemmas, checked against the implementation's actual
//! phase/date bookkeeping via `Sim::run_with_protocol`.

use det_sim::{SimDuration, SimTime};
use hydee::{Hydee, HydeeConfig};
use mps_sim::{Application, ClusterMap, Rank, Sim, SimConfig, Tag};

/// A figure-4-style causal chain across three clusters:
///
/// clusters: C0 = {0,1}, C1 = {2,3}, C2 = {4,5}; all phases start at 1.
///
/// * m1: 0 -> 1 (intra)      -> P1 stays in phase 1
/// * m2: 1 -> 2 (inter)      -> P2 advances to phase 2
/// * m3: 2 -> 3 (intra)      -> P3 advances to phase 2
/// * m4: 3 -> 4 (inter)      -> P4 advances to phase 3
/// * m5: 4 -> 5 (intra)      -> P5 advances to phase 3
fn chain_app() -> (Application, ClusterMap) {
    let mut app = Application::new(6);
    app.rank_mut(Rank(0)).send(Rank(1), 100, Tag(0));
    app.rank_mut(Rank(1)).recv(Rank(0), Tag(0));
    app.rank_mut(Rank(1)).send(Rank(2), 100, Tag(0));
    app.rank_mut(Rank(2)).recv(Rank(1), Tag(0));
    app.rank_mut(Rank(2)).send(Rank(3), 100, Tag(0));
    app.rank_mut(Rank(3)).recv(Rank(2), Tag(0));
    app.rank_mut(Rank(3)).send(Rank(4), 100, Tag(0));
    app.rank_mut(Rank(4)).recv(Rank(3), Tag(0));
    app.rank_mut(Rank(4)).send(Rank(5), 100, Tag(0));
    app.rank_mut(Rank(5)).recv(Rank(4), Tag(0));
    (app, ClusterMap::new(vec![0, 0, 1, 1, 2, 2]))
}

#[test]
fn phase_propagation_matches_figure_4_rules() {
    let (app, clusters) = chain_app();
    let sim = Sim::new(
        app,
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(clusters)),
    );
    let (report, hydee) = sim.run_with_protocol();
    assert!(report.completed());
    // Phase rules: intra = max, inter = max + 1.
    assert_eq!(hydee.state(Rank(0)).phase, 1, "sender never advances");
    assert_eq!(hydee.state(Rank(1)).phase, 1, "intra keeps phase");
    assert_eq!(hydee.state(Rank(2)).phase, 2, "first inter hop");
    assert_eq!(hydee.state(Rank(3)).phase, 2, "intra forwards phase");
    assert_eq!(hydee.state(Rank(4)).phase, 3, "second inter hop");
    assert_eq!(hydee.state(Rank(5)).phase, 3, "intra forwards phase");
}

#[test]
fn dates_count_send_and_recv_events() {
    let (app, clusters) = chain_app();
    let sim = Sim::new(
        app,
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(clusters)),
    );
    let (report, hydee) = sim.run_with_protocol();
    assert!(report.completed());
    // P0: 1 send. P1..P4: 1 recv + 1 send. P5: 1 recv.
    assert_eq!(hydee.state(Rank(0)).date, 1);
    for r in 1..5u32 {
        assert_eq!(hydee.state(Rank(r)).date, 2, "P{r}");
    }
    assert_eq!(hydee.state(Rank(5)).date, 1);
}

#[test]
fn lemma1_phases_monotone_along_happened_before() {
    // Along any causal chain the phase never decreases: the chain app's
    // per-rank phases are non-decreasing in chain order.
    let (app, clusters) = chain_app();
    let sim = Sim::new(
        app,
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(clusters)),
    );
    let (report, hydee) = sim.run_with_protocol();
    assert!(report.completed());
    let phases: Vec<u64> = (0..6u32).map(|r| hydee.state(Rank(r)).phase).collect();
    assert!(
        phases.windows(2).all(|w| w[0] <= w[1]),
        "phases along the chain must be monotone: {phases:?}"
    );
}

#[test]
fn lemma2_only_inter_cluster_messages_logged() {
    let (app, clusters) = chain_app();
    let sim = Sim::new(
        app,
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(clusters)),
    );
    let (report, hydee) = sim.run_with_protocol();
    assert!(report.completed());
    // Only m2 (1->2) and m4 (3->4) are logged.
    assert_eq!(hydee.state(Rank(1)).log.messages(), 1);
    assert_eq!(hydee.state(Rank(3)).log.messages(), 1);
    for r in [0u32, 2, 4, 5] {
        assert_eq!(hydee.state(Rank(r)).log.messages(), 0, "P{r}");
    }
    assert_eq!(report.metrics.logged_bytes_cumulative, 200);
}

#[test]
fn lemma4_replayed_send_phases_are_identical() {
    // Figure 4's core argument: after the failure, re-executed sends carry
    // the same phase as in the original run. The trace oracle checks
    // payload identity; here we check the protocol-level metadata by
    // comparing RPP contents of a survivor across a failure.
    let mut app = Application::new(4);
    for round in 0..30 {
        let tag = Tag(round % 2);
        app.rank_mut(Rank(0)).send(Rank(1), 256, tag);
        app.rank_mut(Rank(1)).recv(Rank(0), tag);
        app.rank_mut(Rank(1)).send(Rank(2), 256, tag); // inter
        app.rank_mut(Rank(2)).recv(Rank(1), tag);
        app.rank_mut(Rank(2)).send(Rank(3), 256, tag);
        app.rank_mut(Rank(3)).recv(Rank(2), tag);
        app.rank_mut(Rank(3)).send(Rank(0), 256, tag); // inter
        app.rank_mut(Rank(0)).recv(Rank(3), tag);
    }
    let clusters = ClusterMap::new(vec![0, 0, 1, 1]);
    let golden = {
        let sim = Sim::new(
            app.clone(),
            SimConfig::default(),
            Hydee::new(HydeeConfig::new(clusters.clone())),
        );
        let (report, hydee) = sim.run_with_protocol();
        assert!(report.completed());
        // RPP of P2 for channel 1->2: dates -> phases of every received
        // inter-cluster message.
        (0..30u64)
            .map(|i| hydee.state(Rank(2)).rpp.orphan_phases(Rank(1), i).len())
            .collect::<Vec<_>>()
    };
    let recovered = {
        let mut sim = Sim::new(
            app,
            SimConfig::default(),
            Hydee::new(HydeeConfig::new(clusters)),
        );
        sim.inject_failure(SimTime::from_us(200), vec![Rank(2)]);
        let (report, hydee) = sim.run_with_protocol();
        assert!(report.completed(), "{:?}", report.status);
        assert!(report.trace.is_consistent());
        (0..30u64)
            .map(|i| hydee.state(Rank(2)).rpp.orphan_phases(Rank(1), i).len())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        golden, recovered,
        "per-date phase records must be execution-invariant (Lemma 4)"
    );
}

#[test]
fn orphan_ordering_like_figure_4() {
    // Figure 4's failure scenario: cluster C1 = {2,3} fails; m3-analogue
    // (1->2) becomes orphan; the messages causally after it (with higher
    // phases) cannot be emitted before the orphan is re-covered. We assert
    // the observable consequence: recovery completes with suppressed
    // orphan re-emissions and an identical outcome.
    let mut app = Application::new(6);
    for round in 0..20 {
        let tag = Tag(round % 2);
        // 1 -> 2 (inter C0->C1), 2 -> 4 (inter C1->C2), 4 -> 1 (inter C2->C0)
        app.rank_mut(Rank(1)).send(Rank(2), 512, tag);
        app.rank_mut(Rank(2)).recv(Rank(1), tag);
        app.rank_mut(Rank(2)).send(Rank(4), 512, tag);
        app.rank_mut(Rank(4)).recv(Rank(2), tag);
        app.rank_mut(Rank(4)).send(Rank(1), 512, tag);
        app.rank_mut(Rank(1)).recv(Rank(4), tag);
        // Intra chatter to give the clusters internal state.
        app.rank_mut(Rank(0)).send(Rank(1), 64, tag);
        app.rank_mut(Rank(1)).recv(Rank(0), tag);
        app.rank_mut(Rank(2)).send(Rank(3), 64, tag);
        app.rank_mut(Rank(3)).recv(Rank(2), tag);
        app.rank_mut(Rank(4)).send(Rank(5), 64, tag);
        app.rank_mut(Rank(5)).recv(Rank(4), tag);
    }
    let clusters = ClusterMap::new(vec![0, 0, 1, 1, 2, 2]);
    let golden = Sim::new(
        app.clone(),
        SimConfig::default(),
        Hydee::new(HydeeConfig::new(clusters.clone())),
    )
    .run();
    let mut cfg = HydeeConfig::new(clusters);
    cfg.restart_latency = SimDuration::from_us(50);
    let mut sim = Sim::new(app, SimConfig::default(), Hydee::new(cfg));
    sim.inject_failure(SimTime::from_us(150), vec![Rank(3)]);
    let report = sim.run();
    assert!(report.completed(), "{:?}", report.status);
    assert!(
        report.trace.is_consistent(),
        "{:?}",
        report.trace.violations
    );
    assert_eq!(report.digests, golden.digests);
    assert_eq!(report.metrics.ranks_rolled_back, 2, "only C1 = {{2,3}}");
    assert!(
        report.metrics.suppressed_sends > 0,
        "the orphan m3-analogues must be suppressed, not re-sent"
    );
    assert!(
        report.metrics.replayed_messages > 0,
        "logged messages into C1 must be replayed"
    );
}
