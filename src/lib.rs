//! # hydee-repro — umbrella crate
//!
//! Re-exports the whole HydEE reproduction workspace behind one
//! dependency, and hosts the cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`). See `README.md` for the tour and
//! `DESIGN.md` for the system inventory.

pub use clustering;
pub use det_sim;
pub use hydee;
pub use mps_sim;
pub use net_model;
pub use protocols;
pub use scenario;
pub use telemetry;
pub use workloads;
